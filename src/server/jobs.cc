#include "jobs.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/jit_cpp.h"
#include "core/scope.h"
#include "core/vcd.h"

namespace cmtl {
namespace server {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

JobResult
runOneShot(const JobSpec &spec, const DesignFactory &make)
{
    auto t0 = std::chrono::steady_clock::now();
    JobResult out;
    SimConfig cfg = spec.cfg;
    cfg.resolve();
    out.backend = cfg.toString();

    std::unique_ptr<Model> model = make(spec);
    auto elab = model->elaborate();
    std::unique_ptr<Simulator> sim = makeSimulator(elab, cfg);

    std::unique_ptr<VcdWriter> vcd;
    if (!spec.vcd.empty())
        vcd = std::make_unique<VcdWriter>(*sim, spec.vcd);
    std::unique_ptr<CheckpointManager> ckpt;
    if (!spec.checkpoint.empty()) {
        ckpt = std::make_unique<CheckpointManager>(
            spec.checkpoint, spec.checkpoint_every);
        ckpt->attach(*sim);
    }
    std::unique_ptr<SimScope> scope;
    if (spec.profile) {
        scope = std::make_unique<SimScope>(*sim);
        scope->traceAllValRdy();
    }

    sim->runUntil(spec.cycles);
    out.cycles = sim->numCycles();
    out.digest = stateDigest(*sim);
    if (scope) {
        out.metrics_json = scope->jsonSnapshot();
        scope->detach();
    }
    out.wall_ms = msSince(t0);
    return out;
}

// ------------------------------------------------------ JobScheduler

JobScheduler::JobScheduler(int thread_budget, int queue_cap,
                           DesignFactory make_design)
    : budget_total_(std::max(1, thread_budget)),
      queue_cap_(std::max(1, queue_cap)),
      make_design_(std::move(make_design)),
      budget_free_(budget_total_)
{
    // Warm the lazily-initialized toolchain probes before concurrent
    // workers can race their first use.
    if (CppJit::compilerAvailable())
        CppJit::compilerVersion();
    workers_.reserve(static_cast<size_t>(budget_total_));
    for (int i = 0; i < budget_total_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobScheduler::~JobScheduler()
{
    stop();
}

bool
JobScheduler::terminal(JobState s)
{
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled;
}

uint64_t
JobScheduler::remainingOf(const Job &job)
{
    return job.spec.cycles > job.cycle ? job.spec.cycles - job.cycle : 0;
}

int
JobScheduler::costOf(const JobSpec &spec) const
{
    return std::min(std::max(1, spec.cfg.threads), budget_total_);
}

int
JobScheduler::submit(JobSpec spec, uint64_t owner, std::string *error)
{
    spec.cfg.resolve();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
        if (error)
            *error = "scheduler is shutting down";
        return -1;
    }
    if (nonterminal_ >= queue_cap_) {
        if (error)
            *error = "queue full (" + std::to_string(queue_cap_) +
                     " jobs waiting or running)";
        return -1;
    }
    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->spec = std::move(spec);
    job->owner = owner;
    jobs_.emplace(job->id, job);
    ++nonterminal_;
    maybePreemptLocked(*job);
    cv_.notify_all();
    return job->id;
}

void
JobScheduler::maybePreemptLocked(const Job &incoming)
{
    if (budget_free_ >= costOf(incoming.spec))
        return;
    // Checkpoint-preempt the running job with the most cycles left,
    // but only for a clear win (4x) — thrashing two similar jobs
    // through snapshot/restore helps nobody. Jobs streaming side
    // artifacts (VCD, checkpoints, profiles) are not preemptible: a
    // fresh writer would restart their artifact mid-file.
    uint64_t incoming_rem = remainingOf(incoming);
    Job *victim = nullptr;
    for (auto &kv : jobs_) {
        Job &j = *kv.second;
        if (j.state != JobState::Running || j.cancel_requested ||
            j.preempt_requested || !j.live)
            continue;
        if (!j.spec.vcd.empty() || !j.spec.checkpoint.empty() ||
            j.spec.profile)
            continue;
        uint64_t done = j.live ? j.live->numCycles() : j.cycle;
        uint64_t rem = j.spec.cycles > done ? j.spec.cycles - done : 0;
        if (rem < incoming_rem * 4 || rem == 0)
            continue;
        if (!victim || rem > remainingOf(*victim))
            victim = &j;
    }
    if (victim) {
        victim->preempt_requested = true;
        victim->live->requestPause();
    }
}

std::shared_ptr<JobScheduler::Job>
JobScheduler::pickLocked()
{
    std::shared_ptr<Job> best;
    for (auto &kv : jobs_) {
        auto &job = kv.second;
        if (job->state != JobState::Queued)
            continue;
        if (costOf(job->spec) > budget_free_)
            continue;
        if (!best || remainingOf(*job) < remainingOf(*best))
            best = job;
    }
    return best;
}

void
JobScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        std::shared_ptr<Job> job;
        cv_.wait(lock, [&] {
            return stopping_ || (job = pickLocked()) != nullptr;
        });
        if (stopping_)
            return;
        job->state = JobState::Running;
        budget_free_ -= costOf(job->spec);
        lock.unlock();
        runJob(job);
        lock.lock();
        budget_free_ += costOf(job->spec);
        cv_.notify_all();
    }
}

void
JobScheduler::runJob(const std::shared_ptr<Job> &job)
{
    auto t0 = std::chrono::steady_clock::now();
    const JobSpec &spec = job->spec;
    try {
        SimConfig cfg = spec.cfg;
        cfg.resolve();
        std::unique_ptr<Model> model = make_design_(spec);
        auto elab = model->elaborate();
        std::unique_ptr<Simulator> sim = makeSimulator(elab, cfg);

        {
            std::lock_guard<std::mutex> lock(mu_);
            if (job->snapshot) {
                // Resuming a preempted job: restore outside the lock
                // would race cancel()'s requestPause on a half-built
                // publication; restore is milliseconds, keep it simple.
                snapRestore(*sim, *job->snapshot);
                job->snapshot.reset();
            }
            job->live = sim.get();
            sim->clearPauseRequest();
            if (job->cancel_requested)
                sim->requestPause();
        }

        // Side artifacts attach after any restore so waveforms and
        // checkpoints continue the restored timeline exactly.
        std::unique_ptr<VcdWriter> vcd;
        if (!spec.vcd.empty())
            vcd = std::make_unique<VcdWriter>(*sim, spec.vcd);
        std::unique_ptr<CheckpointManager> ckpt;
        if (!spec.checkpoint.empty()) {
            ckpt = std::make_unique<CheckpointManager>(
                spec.checkpoint, spec.checkpoint_every, 3,
                "job" + std::to_string(job->id));
            ckpt->attach(*sim);
        }
        std::unique_ptr<SimScope> scope;
        if (spec.profile) {
            scope = std::make_unique<SimScope>(*sim);
            scope->traceAllValRdy();
        }

        for (;;) {
            bool done = sim->runUntil(spec.cycles);
            bool cancelled, preempted;
            {
                std::lock_guard<std::mutex> lock(mu_);
                job->cycle = sim->numCycles();
                cancelled = job->cancel_requested;
                preempted = job->preempt_requested;
                job->preempt_requested = false;
            }
            if (cancelled) {
                std::lock_guard<std::mutex> lock(mu_);
                job->live = nullptr;
                job->state = JobState::Cancelled;
                job->result.cycles = job->cycle;
                job->result.error = "cancelled";
                --nonterminal_;
                return;
            }
            if (done) {
                JobResult res;
                res.cycles = sim->numCycles();
                res.digest = stateDigest(*sim);
                res.backend = cfg.toString();
                if (scope) {
                    res.metrics_json = scope->jsonSnapshot();
                    scope->detach();
                }
                res.wall_ms = job->result.wall_ms + msSince(t0);
                std::lock_guard<std::mutex> lock(mu_);
                job->live = nullptr;
                job->result = std::move(res);
                job->state = JobState::Done;
                --nonterminal_;
                return;
            }
            if (preempted) {
                // Capture outside the lock (snapshots are the bulk of
                // preemption cost), then requeue. A cancel that lands
                // during the capture wins below on the next segment's
                // entry — the snapshot is simply dropped.
                auto snap =
                    std::make_unique<SimSnapshot>(snapSave(*sim));
                std::lock_guard<std::mutex> lock(mu_);
                job->live = nullptr;
                if (job->cancel_requested) {
                    job->state = JobState::Cancelled;
                    job->result.cycles = job->cycle;
                    job->result.error = "cancelled";
                    --nonterminal_;
                    return;
                }
                job->snapshot = std::move(snap);
                job->state = JobState::Queued;
                job->result.wall_ms += msSince(t0);
                ++job->preemptions;
                ++preemptions_total_;
                cv_.notify_all();
                return;
            }
            // Spurious pause (no cause recorded): resume the loop.
        }
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(mu_);
        job->live = nullptr;
        if (!terminal(job->state)) {
            job->state = JobState::Failed;
            job->result.error = e.what();
            job->result.wall_ms += msSince(t0);
            --nonterminal_;
        }
    }
}

bool
JobScheduler::cancel(int id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &job = *it->second;
    if (terminal(job.state))
        return false;
    if (job.state == JobState::Queued) {
        job.state = JobState::Cancelled;
        job.snapshot.reset();
        job.result.error = "cancelled";
        --nonterminal_;
        cv_.notify_all();
        return true;
    }
    job.cancel_requested = true;
    if (job.live)
        job.live->requestPause();
    return true;
}

std::vector<JobInfo>
JobScheduler::status(int id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobInfo> out;
    for (const auto &kv : jobs_) {
        const Job &job = *kv.second;
        if (id >= 0 && job.id != id)
            continue;
        JobInfo info;
        info.id = job.id;
        info.state = job.state;
        info.spec = job.spec;
        info.cycle = job.live ? job.live->numCycles() : job.cycle;
        info.preemptions = job.preemptions;
        info.owner = job.owner;
        info.result = job.result;
        out.push_back(std::move(info));
    }
    return out;
}

bool
JobScheduler::exists(int id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.count(id) != 0;
}

JobInfo
JobScheduler::awaitResult(int id)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw std::invalid_argument("unknown job " + std::to_string(id));
    auto job = it->second;
    cv_.wait(lock, [&] { return terminal(job->state); });
    JobInfo info;
    info.id = job->id;
    info.state = job->state;
    info.spec = job->spec;
    info.cycle = job->cycle;
    info.preemptions = job->preemptions;
    info.owner = job->owner;
    info.result = job->result;
    return info;
}

int
JobScheduler::awaitAny(const std::vector<int> &ids)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        bool all_claimed = true;
        for (int id : ids) {
            auto it = jobs_.find(id);
            if (it == jobs_.end())
                continue;
            Job &job = *it->second;
            if (terminal(job.state) && !job.claimed) {
                job.claimed = true;
                return job.id;
            }
            if (!job.claimed)
                all_claimed = false;
        }
        if (all_claimed)
            return -1;
        cv_.wait(lock);
    }
}

int
JobScheduler::reapOwner(uint64_t owner)
{
    std::lock_guard<std::mutex> lock(mu_);
    int reaped = 0;
    for (auto &kv : jobs_) {
        Job &job = *kv.second;
        if (job.owner != owner || terminal(job.state))
            continue;
        if (job.state == JobState::Queued) {
            job.state = JobState::Cancelled;
            job.snapshot.reset();
            job.result.error = "client disconnected";
            --nonterminal_;
        } else {
            job.cancel_requested = true;
            if (job.live)
                job.live->requestPause();
        }
        ++reaped;
    }
    if (reaped)
        cv_.notify_all();
    return reaped;
}

void
JobScheduler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        for (auto &kv : jobs_) {
            Job &job = *kv.second;
            if (terminal(job.state))
                continue;
            if (job.state == JobState::Queued) {
                job.state = JobState::Cancelled;
                job.snapshot.reset();
                job.result.error = "server shutdown";
                --nonterminal_;
            } else {
                job.cancel_requested = true;
                if (job.live)
                    job.live->requestPause();
            }
        }
        cv_.notify_all();
    }
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
}

int
JobScheduler::preemptionCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return preemptions_total_;
}

} // namespace server
} // namespace cmtl
