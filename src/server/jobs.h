/**
 * @file
 * SimServer job scheduler: N concurrent simulation jobs multiplexed
 * over a bounded thread budget, with SimSnap-backed preemption.
 *
 * Every job owns its own model + elaboration + makeSimulator()
 * instance (one simulator may be live per elaboration, and traffic
 * parameters are baked into the model), so jobs are fully independent;
 * what they share is the resident process and the warm on-disk SimJIT
 * cache — the second job with the same design/backend pays no compile.
 *
 * Scheduling: shortest-remaining-cycles first over the queued set. A
 * job with cfg.threads = T draws min(T, budget) units of the thread
 * budget, so ParSim jobs and sequential jobs share one pool.
 * Preemption composes the two cooperative primitives grown for it:
 * Simulator::requestPause() stops the victim at the next cycle
 * boundary, snapSave() captures its complete architectural state into
 * memory, and the victim's slot (simulator, arena, JIT handles) is
 * torn down — the snapshot, not the simulator, waits in the queue.
 * When the job is picked again, a fresh simulator is built and
 * snapRestore()d; SimSnap's bit-identical guarantee makes a preempted
 * run's final digest equal to an unpreempted one's. Jobs writing VCD
 * waveforms or periodic checkpoints are never chosen as victims (a
 * fresh VcdWriter would restart their dump mid-file).
 *
 * States: Queued -> Running -> {Done, Failed, Cancelled}; a preempted
 * job returns to Queued with its snapshot in hand. cancel() works in
 * any non-terminal state and interrupts a running job at the next
 * cycle boundary via the same pause hook.
 */

#ifndef CMTL_SERVER_JOBS_H
#define CMTL_SERVER_JOBS_H

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/psim.h"
#include "core/sim.h"
#include "core/snap.h"

namespace cmtl {
namespace server {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

const char *jobStateName(JobState s);

/** Everything a submit/sweep-point request pins down about one run. */
struct JobSpec
{
    std::string design = "mesh"; //!< registered corpus name
    std::string level = "rtl";   //!< abstraction level (mesh designs)
    /** Backend + threads + jit cache; resolve()d before use. */
    SimConfig cfg;
    uint64_t cycles = 1000; //!< run length (from cycle 0)
    // Traffic parameters (interpreted by the design factory).
    double injection = 0.30; //!< per-terminal injection rate [0, 1]
    uint64_t seed = 7;
    int nrouters = 16;
    bool profile = false; //!< attach SimScope, return its snapshot
    std::string vcd;      //!< server-side waveform path, "" = off
    /** Periodic checkpoint base path ("" = off); files are tagged
     *  with the job id so concurrent jobs never clobber each other. */
    std::string checkpoint;
    uint64_t checkpoint_every = 1000;
};

struct JobResult
{
    uint64_t cycles = 0;     //!< cycles actually simulated
    uint64_t digest = 0;     //!< stateDigest() at the final cycle
    double wall_ms = 0.0;    //!< run segments incl. build/restore
    std::string backend;     //!< canonical backend actually used
    std::string metrics_json; //!< SimScope snapshot when profiled
    std::string error;       //!< Failed: what went wrong
};

/** A point-in-time public view of one job. */
struct JobInfo
{
    int id = -1;
    JobState state = JobState::Queued;
    JobSpec spec;
    uint64_t cycle = 0;  //!< progress (live for running jobs)
    int preemptions = 0; //!< times checkpoint-preempted back to queue
    uint64_t owner = 0;  //!< submitting connection id, 0 = detached
    JobResult result;    //!< valid in terminal states
};

/** Builds the (unelaborated) top model a spec asks for. */
using DesignFactory =
    std::function<std::unique_ptr<Model>(const JobSpec &)>;

/**
 * Run one spec to completion in the calling thread — the exact
 * construction and execution path a scheduler worker uses, shared so
 * `sim_client oneshot` and the digest cross-checks compare
 * like-for-like against server runs.
 */
JobResult runOneShot(const JobSpec &spec, const DesignFactory &make);

class JobScheduler
{
  public:
    /**
     * @param thread_budget total concurrent host threads for jobs
     *        (a job costs min(max(1, cfg.threads), thread_budget))
     * @param queue_cap     max jobs waiting or running; submits beyond
     *        it are rejected, keeping the daemon's memory bounded
     * @param make_design   factory resolving spec.design (throws on
     *        unknown names; submit validates first via canBuild)
     */
    JobScheduler(int thread_budget, int queue_cap,
                 DesignFactory make_design);
    ~JobScheduler();
    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Enqueue a job. Returns its id, or -1 with *error set when the
     * queue is full or the spec is invalid. @p owner ties the job to a
     * client connection for reapOwner(); 0 = detached (survives
     * disconnect).
     */
    int submit(JobSpec spec, uint64_t owner, std::string *error);

    /** Cancel a job in any non-terminal state; false if terminal or
     *  unknown. Running jobs stop at the next cycle boundary. */
    bool cancel(int id);

    /** Snapshot of one job (@p id >= 0) or every job (-1). */
    std::vector<JobInfo> status(int id = -1) const;

    bool exists(int id) const;

    /** Block until @p id reaches a terminal state; returns its info.
     *  Throws std::invalid_argument for an unknown id. */
    JobInfo awaitResult(int id);

    /**
     * Block until one of @p ids is terminal and not yet claimed
     * through this call; returns that id, or -1 when all are claimed.
     * The completion-order stream behind the sweep verb.
     */
    int awaitAny(const std::vector<int> &ids);

    /** Cancel every non-terminal job owned by @p owner (client
     *  disconnect reaping); returns the number cancelled. */
    int reapOwner(uint64_t owner);

    /** Cancel everything and join the workers. Idempotent. */
    void stop();

    int threadBudget() const { return budget_total_; }
    int queueCapacity() const { return queue_cap_; }
    /** Total preemptions performed since construction. */
    int preemptionCount() const;

  private:
    struct Job
    {
        int id = -1;
        JobState state = JobState::Queued;
        JobSpec spec;
        uint64_t owner = 0;
        uint64_t cycle = 0;
        int preemptions = 0;
        bool claimed = false; //!< returned by awaitAny already
        bool cancel_requested = false;
        bool preempt_requested = false;
        /** Paused state of a preempted job awaiting resumption. */
        std::unique_ptr<SimSnapshot> snapshot;
        /** Published by the running worker for pause/progress. */
        Simulator *live = nullptr;
        JobResult result;
    };

    void workerLoop();
    /** Next admissible queued job (shortest remaining first). */
    std::shared_ptr<Job> pickLocked();
    void runJob(const std::shared_ptr<Job> &job);
    int costOf(const JobSpec &spec) const;
    void maybePreemptLocked(const Job &incoming);
    static bool terminal(JobState s);
    static uint64_t remainingOf(const Job &job);

    const int budget_total_;
    const int queue_cap_;
    const DesignFactory make_design_;

    mutable std::mutex mu_;
    std::condition_variable cv_;      //!< queue/budget/state changes
    std::map<int, std::shared_ptr<Job>> jobs_;
    int next_id_ = 1;
    int budget_free_;
    int nonterminal_ = 0; //!< queued + running (queue-cap accounting)
    int preemptions_total_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace server
} // namespace cmtl

#endif // CMTL_SERVER_JOBS_H
