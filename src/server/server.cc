#include "server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/traffic.h"

namespace cmtl {
namespace server {

DesignFactory
defaultCorpusFactory()
{
    return [](const JobSpec &spec) -> std::unique_ptr<Model> {
        net::NetLevel level;
        if (spec.level == "fl")
            level = net::NetLevel::FL;
        else if (spec.level == "cl")
            level = net::NetLevel::CL;
        else if (spec.level == "clspec")
            level = net::NetLevel::CLSpec;
        else if (spec.level == "rtl")
            level = net::NetLevel::RTL;
        else
            throw std::invalid_argument("unknown level '" + spec.level +
                                        "' (fl|cl|clspec|rtl)");
        return std::make_unique<net::MeshTrafficTop>(
            "top", level, spec.nrouters, 4, spec.injection, spec.seed);
    };
}

bool
specFromJson(const Json &req, JobSpec *spec, std::string *error)
{
    JobSpec out;
    if (const Json *v = req.find("design"))
        out.design = v->asStr(out.design);
    if (const Json *v = req.find("level"))
        out.level = v->asStr(out.level);
    if (out.level != "fl" && out.level != "cl" && out.level != "clspec" &&
        out.level != "rtl") {
        *error = "unknown level '" + out.level + "' (fl|cl|clspec|rtl)";
        return false;
    }
    if (const Json *v = req.find("backend")) {
        try {
            SimConfig parsed = SimConfig::fromString(v->asStr());
            out.cfg.backend = parsed.backend;
            out.cfg.exec = parsed.exec;
            out.cfg.spec = parsed.spec;
        } catch (const std::invalid_argument &e) {
            *error = e.what();
            return false;
        }
    }
    if (const Json *v = req.find("threads")) {
        out.cfg.threads = v->asInt(1);
        if (out.cfg.threads < 1) {
            *error = "threads wants a positive integer";
            return false;
        }
    }
    if (const Json *v = req.find("cycles"))
        out.cycles = v->asU64(out.cycles);
    if (const Json *v = req.find("injection")) {
        out.injection = v->asNum(out.injection);
        if (out.injection < 0.0 || out.injection > 1.0) {
            *error = "injection wants a rate in [0, 1]";
            return false;
        }
    }
    if (const Json *v = req.find("seed"))
        out.seed = v->asU64(out.seed);
    if (const Json *v = req.find("nrouters")) {
        out.nrouters = v->asInt(out.nrouters);
        if (out.nrouters < 1) {
            *error = "nrouters wants a positive integer";
            return false;
        }
    }
    if (const Json *v = req.find("profile"))
        out.profile = v->asBool();
    if (const Json *v = req.find("vcd"))
        out.vcd = v->asStr();
    if (const Json *v = req.find("checkpoint"))
        out.checkpoint = v->asStr();
    if (const Json *v = req.find("checkpoint_every"))
        out.checkpoint_every = v->asU64(out.checkpoint_every);
    *spec = std::move(out);
    return true;
}

// ---------------------------------------------------------- SimServer

SimServer::SimServer(ServerConfig cfg) : cfg_(std::move(cfg)) {}

SimServer::~SimServer()
{
    stop();
}

void
SimServer::registerDesign(const std::string &name, DesignFactory factory)
{
    std::lock_guard<std::mutex> lock(designs_mu_);
    designs_[name] = std::move(factory);
}

void
SimServer::registerDefaultCorpus()
{
    registerDesign("mesh", defaultCorpusFactory());
}

std::vector<std::string>
SimServer::designNames() const
{
    std::lock_guard<std::mutex> lock(designs_mu_);
    std::vector<std::string> out;
    for (const auto &kv : designs_)
        out.push_back(kv.first);
    return out;
}

bool
SimServer::start(std::string *error)
{
    if (running_.load()) {
        if (error)
            *error = "server already running";
        return false;
    }
    scheduler_ = std::make_unique<JobScheduler>(
        cfg_.jobs, cfg_.queue_cap, [this](const JobSpec &spec) {
            DesignFactory factory;
            {
                std::lock_guard<std::mutex> lock(designs_mu_);
                auto it = designs_.find(spec.design);
                if (it == designs_.end())
                    throw std::invalid_argument("unknown design '" +
                                                spec.design + "'");
                factory = it->second;
            }
            return factory(spec);
        });

    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + cfg_.socket_path;
        return false;
    }
    std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (errno != EADDRINUSE) {
            if (error)
                *error = std::string("bind: ") + std::strerror(errno);
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        // The path exists. A live daemon answers a connect; a stale
        // socket from a crashed one does not and is safe to replace.
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        bool live = probe >= 0 &&
                    ::connect(probe,
                              reinterpret_cast<struct sockaddr *>(&addr),
                              sizeof(addr)) == 0;
        if (probe >= 0)
            ::close(probe);
        if (live) {
            if (error)
                *error = "a daemon is already listening on " +
                         cfg_.socket_path;
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        ::unlink(cfg_.socket_path.c_str());
        if (::bind(listen_fd_,
                   reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            if (error)
                *error = std::string("bind: ") + std::strerror(errno);
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
    }
    if (::listen(listen_fd_, 16) < 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    running_.store(true);
    stop_requested_.store(false);
    prewarm();
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SimServer::prewarm()
{
    if (cfg_.prewarm_backend.empty())
        return;
    // One tiny detached job per registered design: the JIT cache key
    // is the generated source, so a 1-cycle run leaves the cache warm
    // for every later job at this backend (whatever its traffic
    // parameters).
    for (const std::string &name : designNames()) {
        JobSpec spec;
        spec.design = name;
        spec.cycles = 1;
        try {
            SimConfig parsed = SimConfig::fromString(cfg_.prewarm_backend);
            spec.cfg.backend = parsed.backend;
            spec.cfg.exec = parsed.exec;
            spec.cfg.spec = parsed.spec;
        } catch (const std::invalid_argument &) {
            return;
        }
        scheduler_->submit(std::move(spec), 0, nullptr);
    }
}

void
SimServer::acceptLoop()
{
    for (;;) {
        int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed by stop()
        }
        if (stop_requested_.load()) {
            ::close(cfd);
            return;
        }
        std::lock_guard<std::mutex> lock(conns_mu_);
        uint64_t conn_id = next_conn_id_++;
        conn_fds_[conn_id] = cfd;
        conn_threads_.emplace_back(
            [this, cfd, conn_id] { handleConnection(cfd, conn_id); });
    }
}

void
SimServer::handleConnection(int fd, uint64_t conn_id)
{
    try {
        std::string payload;
        // Handshake: the first frame must be a version-matched hello.
        if (readFrame(fd, payload)) {
            bool ok = false;
            std::string why;
            try {
                Json req = jsonParse(payload);
                const Json *verb = req.find("verb");
                const Json *ver = req.find("version");
                if (!verb || verb->asStr() != "hello")
                    why = "expected hello as the first frame";
                else if (!ver ||
                         ver->asU64() != static_cast<uint64_t>(
                                             kProtoVersion))
                    why = "protocol version mismatch: server speaks " +
                          std::to_string(kProtoVersion);
                else
                    ok = true;
            } catch (const ProtoError &e) {
                why = e.what();
            }
            Json reply = Json::object();
            reply.set("ok", Json::boolean(ok));
            reply.set("version", Json::number(static_cast<uint64_t>(kProtoVersion)));
            if (ok)
                reply.set("server", Json::string("cmtl-simserver"));
            else
                reply.set("error", Json::string(why));
            writeFrame(fd, reply.encode());
            if (ok) {
                while (readFrame(fd, payload)) {
                    Json req;
                    try {
                        req = jsonParse(payload);
                    } catch (const ProtoError &e) {
                        Json err = Json::object();
                        err.set("ok", Json::boolean(false));
                        err.set("error", Json::string(e.what()));
                        writeFrame(fd, err.encode());
                        continue;
                    }
                    if (!dispatch(fd, conn_id, req))
                        break;
                }
            }
        }
    } catch (const ProtoError &) {
        // Truncated/oversized frame or peer gone mid-write: drop the
        // connection; reaping below cancels any attached jobs.
    }
    if (scheduler_)
        scheduler_->reapOwner(conn_id);
    ::close(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(conn_id);
}

Json
SimServer::jobReply(const JobInfo &info) const
{
    Json out = Json::object();
    out.set("job", Json::number(info.id));
    out.set("state", Json::string(jobStateName(info.state)));
    out.set("design", Json::string(info.spec.design));
    out.set("injection", Json::number(info.spec.injection));
    out.set("backend", Json::string(info.result.backend.empty()
                                        ? info.spec.cfg.toString()
                                        : info.result.backend));
    out.set("threads", Json::number(info.spec.cfg.threads));
    out.set("cycle", Json::number(info.cycle));
    out.set("preemptions", Json::number(info.preemptions));
    if (info.state == JobState::Done) {
        out.set("cycles", Json::number(info.result.cycles));
        out.set("digest", Json::string(hexU64(info.result.digest)));
        out.set("wall_ms", Json::number(info.result.wall_ms));
        if (!info.result.metrics_json.empty())
            out.set("metrics", Json::string(info.result.metrics_json));
    } else if (!info.result.error.empty()) {
        out.set("error", Json::string(info.result.error));
    }
    return out;
}

bool
SimServer::dispatch(int fd, uint64_t conn_id, const Json &req)
{
    const Json *verb_v = req.find("verb");
    std::string verb = verb_v ? verb_v->asStr() : "";
    Json reply = Json::object();

    if (verb == "hello") {
        reply.set("ok", Json::boolean(true));
        reply.set("version", Json::number(static_cast<uint64_t>(kProtoVersion)));
        reply.set("server", Json::string("cmtl-simserver"));
    } else if (verb == "submit") {
        JobSpec spec;
        std::string error;
        if (!specFromJson(req, &spec, &error)) {
            reply.set("ok", Json::boolean(false));
            reply.set("error", Json::string(error));
        } else {
            bool known;
            {
                std::lock_guard<std::mutex> lock(designs_mu_);
                known = designs_.count(spec.design) != 0;
            }
            if (!known) {
                reply.set("ok", Json::boolean(false));
                reply.set("error", Json::string("unknown design '" +
                                                spec.design + "'"));
            } else {
                const Json *detach = req.find("detach");
                uint64_t owner =
                    detach && detach->asBool() ? 0 : conn_id;
                int id =
                    scheduler_->submit(std::move(spec), owner, &error);
                if (id < 0) {
                    reply.set("ok", Json::boolean(false));
                    reply.set("error", Json::string(error));
                } else {
                    reply.set("ok", Json::boolean(true));
                    reply.set("job", Json::number(id));
                }
            }
        }
    } else if (verb == "status") {
        const Json *jv = req.find("job");
        int id = jv ? jv->asInt(-1) : -1;
        std::vector<JobInfo> infos = scheduler_->status(id);
        if (id >= 0 && infos.empty()) {
            reply.set("ok", Json::boolean(false));
            reply.set("error", Json::string("unknown job " +
                                            std::to_string(id)));
        } else {
            reply.set("ok", Json::boolean(true));
            Json arr = Json::array();
            for (const JobInfo &info : infos)
                arr.push(jobReply(info));
            reply.set("jobs", std::move(arr));
        }
    } else if (verb == "result") {
        const Json *jv = req.find("job");
        int id = jv ? jv->asInt(-1) : -1;
        if (!scheduler_->exists(id)) {
            reply.set("ok", Json::boolean(false));
            reply.set("error", Json::string("unknown job " +
                                            std::to_string(id)));
        } else {
            JobInfo info = scheduler_->awaitResult(id);
            reply = jobReply(info);
            reply.set("ok",
                      Json::boolean(info.state == JobState::Done));
        }
    } else if (verb == "cancel") {
        const Json *jv = req.find("job");
        int id = jv ? jv->asInt(-1) : -1;
        bool ok = scheduler_->cancel(id);
        reply.set("ok", Json::boolean(ok));
        if (!ok)
            reply.set("error",
                      Json::string("job is terminal or unknown"));
    } else if (verb == "sweep") {
        handleSweep(fd, conn_id, req);
        return true;
    } else if (verb == "shutdown") {
        reply.set("ok", Json::boolean(true));
        reply.set("stopping", Json::boolean(true));
        writeFrame(fd, reply.encode());
        stop_requested_.store(true);
        shutdown_cv_.notify_all();
        return false;
    } else {
        reply.set("ok", Json::boolean(false));
        reply.set("error",
                  Json::string("unknown verb '" + verb + "'"));
    }
    writeFrame(fd, reply.encode());
    return true;
}

void
SimServer::handleSweep(int fd, uint64_t conn_id, const Json &req)
{
    // Base spec carries the shared fields; the grid is the cross
    // product of the "injections" and "backends" arrays (each
    // defaulting to the base spec's single value).
    JobSpec base;
    std::string error;
    if (!specFromJson(req, &base, &error)) {
        Json err = Json::object();
        err.set("ok", Json::boolean(false));
        err.set("error", Json::string(error));
        writeFrame(fd, err.encode());
        return;
    }
    std::vector<double> injections;
    if (const Json *v = req.find("injections"))
        for (const Json &e : v->arr)
            injections.push_back(e.asNum());
    if (injections.empty())
        injections.push_back(base.injection);
    std::vector<std::string> backends;
    if (const Json *v = req.find("backends"))
        for (const Json &e : v->arr)
            backends.push_back(e.asStr());
    if (backends.empty())
        backends.push_back(base.cfg.toString());

    struct Point
    {
        size_t index;
        JobSpec spec;
        int id = -1;
    };
    std::vector<Point> points;
    for (const std::string &backend : backends) {
        SimConfig cfg;
        try {
            SimConfig parsed = SimConfig::fromString(backend);
            cfg = base.cfg;
            cfg.backend = parsed.backend;
            cfg.exec = parsed.exec;
            cfg.spec = parsed.spec;
        } catch (const std::invalid_argument &e) {
            Json err = Json::object();
            err.set("ok", Json::boolean(false));
            err.set("error", Json::string(e.what()));
            writeFrame(fd, err.encode());
            return;
        }
        for (double injection : injections) {
            if (injection < 0.0 || injection > 1.0) {
                Json err = Json::object();
                err.set("ok", Json::boolean(false));
                err.set("error",
                        Json::string("injection wants a rate in "
                                     "[0, 1]"));
                writeFrame(fd, err.encode());
                return;
            }
            Point p;
            p.index = points.size();
            p.spec = base;
            p.spec.cfg = cfg;
            p.spec.injection = injection;
            // Server-side artifact paths would collide across the
            // grid; sweeps run digest-only.
            p.spec.vcd.clear();
            p.spec.checkpoint.clear();
            points.push_back(std::move(p));
        }
    }

    Json head = Json::object();
    head.set("ok", Json::boolean(true));
    head.set("sweep", Json::boolean(true));
    head.set("points", Json::number(points.size()));
    writeFrame(fd, head.encode());

    // Submit in waves bounded by the queue cap and stream results in
    // completion order: a 100-point sweep never needs a 100-deep
    // queue, and fast points aren't stuck behind slow ones.
    size_t next = 0, streamed = 0;
    std::vector<int> ids;
    while (streamed < points.size()) {
        while (next < points.size()) {
            int id = scheduler_->submit(points[next].spec, conn_id,
                                        &error);
            if (id < 0)
                break; // queue full (or stopping): drain first
            points[next].id = id;
            ids.push_back(id);
            ++next;
        }
        if (ids.empty()) {
            Json err = Json::object();
            err.set("ok", Json::boolean(false));
            err.set("error", Json::string(error));
            writeFrame(fd, err.encode());
            return;
        }
        int done_id = scheduler_->awaitAny(ids);
        if (done_id < 0) {
            if (next < points.size())
                continue;
            break; // every submitted id claimed, nothing left
        }
        std::vector<JobInfo> infos = scheduler_->status(done_id);
        if (infos.empty())
            continue;
        Json frame = jobReply(infos[0]);
        frame.set("ok",
                  Json::boolean(infos[0].state == JobState::Done));
        for (const Point &p : points)
            if (p.id == done_id) {
                frame.set("index",
                          Json::number(static_cast<uint64_t>(p.index)));
                break;
            }
        writeFrame(fd, frame.encode());
        ++streamed;
    }

    Json tail = Json::object();
    tail.set("ok", Json::boolean(true));
    tail.set("sweep_done", Json::boolean(true));
    tail.set("points", Json::number(points.size()));
    tail.set("preemptions",
             Json::number(scheduler_->preemptionCount()));
    writeFrame(fd, tail.encode());
}

void
SimServer::wait()
{
    std::unique_lock<std::mutex> lock(conns_mu_);
    shutdown_cv_.wait(lock, [&] { return stop_requested_.load(); });
}

void
SimServer::stop()
{
    stop_requested_.store(true);
    shutdown_cv_.notify_all();
    if (!running_.exchange(false))
        return;
    // Unblock accept(), then make every job terminal so handler
    // threads parked in awaitResult/awaitAny return, then kick any
    // reader still parked on a socket.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (scheduler_)
        scheduler_->stop();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto &kv : conn_fds_)
            ::shutdown(kv.second, SHUT_RDWR);
        threads.swap(conn_threads_);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
    ::unlink(cfg_.socket_path.c_str());
}

} // namespace server
} // namespace cmtl
