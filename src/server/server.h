/**
 * @file
 * SimServer: a long-lived simulation-as-a-service daemon.
 *
 * The daemon holds a registered design corpus, binds a Unix-domain
 * socket, and serves length-prefixed JSON requests (see proto.h) by
 * feeding a JobScheduler. One resident process amortizes what repeated
 * one-shot CLI runs pay every time — process startup, design
 * registration, and above all the SimJIT compile: the on-disk cache is
 * warm after the first job of a given design x backend, so a hundred
 * sweep points pay one compile.
 *
 * Verbs: hello (version handshake), submit, status, result (blocking),
 * cancel, sweep (batched grid fan-out streaming per-point frames in
 * completion order), shutdown. Jobs are tied to the submitting
 * connection unless submitted with "detach":true; when a client
 * disconnects, its attached jobs are cancelled (reaped) so an
 * abandoned sweep never pins the queue.
 */

#ifndef CMTL_SERVER_SERVER_H
#define CMTL_SERVER_SERVER_H

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "jobs.h"
#include "proto.h"

namespace cmtl {
namespace server {

struct ServerConfig
{
    std::string socket_path = "/tmp/cmtl-sim.sock";
    int jobs = 2;        //!< concurrent-job thread budget
    int queue_cap = 64;  //!< max jobs waiting or running
    /** Backend to JIT-prewarm at startup ("" = none): the daemon runs
     *  one tiny job so the first client never pays the cold compile. */
    std::string prewarm_backend;
};

/**
 * The factory behind the built-in corpus: "mesh" — MeshTrafficTop at
 * spec.level (fl|cl|clspec|rtl) with spec.nrouters routers, 4-entry
 * queues, spec.injection, spec.seed. Exported so sim_client's oneshot
 * mode and the bench build byte-identical models to the daemon's.
 */
DesignFactory defaultCorpusFactory();

/** Build a JobSpec from a request object; false + *error on bad
 *  fields (unknown backend, out-of-range injection, ...). */
bool specFromJson(const Json &req, JobSpec *spec, std::string *error);

class SimServer
{
  public:
    explicit SimServer(ServerConfig cfg);
    ~SimServer();
    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Register @p name; replaces an existing registration. */
    void registerDesign(const std::string &name, DesignFactory factory);
    /** Register the built-in corpus (currently "mesh"). */
    void registerDefaultCorpus();
    std::vector<std::string> designNames() const;

    /**
     * Bind the socket, start the scheduler and the accept loop.
     * Returns false with *error on bind/listen failure (e.g. a live
     * daemon already owns the path).
     */
    bool start(std::string *error);

    /** Block until a client's shutdown verb (or stop()) lands. */
    void wait();

    /** Shut everything down: stop accepting, cancel jobs, join
     *  connection threads, unlink the socket. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }
    JobScheduler &scheduler() { return *scheduler_; }
    const ServerConfig &config() const { return cfg_; }

  private:
    void acceptLoop();
    void handleConnection(int fd, uint64_t conn_id);
    /** One request frame -> zero or more reply frames on @p fd.
     *  Returns false when the connection should close (shutdown). */
    bool dispatch(int fd, uint64_t conn_id, const Json &req);
    void handleSweep(int fd, uint64_t conn_id, const Json &req);
    Json jobReply(const JobInfo &info) const;
    void prewarm();

    ServerConfig cfg_;
    std::map<std::string, DesignFactory> designs_;
    mutable std::mutex designs_mu_;

    std::unique_ptr<JobScheduler> scheduler_;
    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};

    std::mutex conns_mu_;
    std::condition_variable shutdown_cv_;
    std::map<uint64_t, int> conn_fds_; //!< live connections for stop()
    std::vector<std::thread> conn_threads_;
    uint64_t next_conn_id_ = 1;
};

} // namespace server
} // namespace cmtl

#endif // CMTL_SERVER_SERVER_H
