/**
 * @file
 * SimServer wire protocol: length-prefixed JSON frames over a local
 * Unix-domain stream socket.
 *
 * Every message — request or reply — is one frame:
 *
 *   u32 little-endian payload length | payload bytes (UTF-8 JSON)
 *
 * A frame whose length prefix exceeds kMaxFrameBytes is rejected
 * without reading the payload (a stream desynchronization or a hostile
 * peer; the connection is beyond repair and must be closed). A frame
 * that ends early — the peer closed mid-length or mid-payload — is a
 * truncation error, distinct from the clean EOF between frames.
 *
 * The first frame on a connection must be the version handshake:
 *
 *   client  {"verb":"hello","version":1}
 *   server  {"ok":true,"version":1,"server":"cmtl-simserver"}
 *
 * A version mismatch is answered with {"ok":false,"error":...} and the
 * connection is closed — newer clients never silently talk past an
 * older daemon. After the handshake the client sends one request frame
 * per verb (submit / status / result / cancel / sweep / shutdown) and
 * reads replies; every reply carries "ok" plus either result fields or
 * "error". The sweep verb is the one streaming reply: per-point result
 * frames as jobs complete, terminated by a {"sweep_done":true} frame.
 *
 * The Json value type below is deliberately tiny — objects keep
 * insertion order, numbers are doubles (64-bit digests travel as hex
 * strings) — and jsonParse() rejects anything malformed with a
 * ProtoError rather than guessing.
 */

#ifndef CMTL_SERVER_PROTO_H
#define CMTL_SERVER_PROTO_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cmtl {
namespace server {

/** Thrown on malformed frames, bad JSON, and connection errors. */
class ProtoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Wire protocol version; bump on any incompatible frame change. */
constexpr uint32_t kProtoVersion = 1;

/** Hard ceiling on one frame's payload (sanity, not a quota). */
constexpr uint32_t kMaxFrameBytes = 1u << 20;

/** A parsed JSON value (null / bool / number / string / array / object). */
struct Json
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    static Json boolean(bool v);
    static Json number(double v);
    static Json number(uint64_t v);
    static Json number(int v);
    static Json string(std::string v);
    static Json array();
    static Json object();

    /** Object member set (append; overwrite an existing key). */
    Json &set(const std::string &key, Json v);
    /** Array element append. */
    Json &push(Json v);

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    // Typed accessors with defaults (never throw; a missing or
    // differently-typed value yields the default).
    bool asBool(bool dflt = false) const;
    double asNum(double dflt = 0.0) const;
    uint64_t asU64(uint64_t dflt = 0) const;
    int asInt(int dflt = 0) const;
    std::string asStr(const std::string &dflt = "") const;

    /** Serialize (compact, no whitespace). */
    std::string encode() const;
};

/** Parse @p text; throws ProtoError on any malformed input. */
Json jsonParse(const std::string &text);

/** 16-hex-digit encoding of a 64-bit digest (JSON-number safe). */
std::string hexU64(uint64_t v);
/** Parse hexU64 output; throws ProtoError on malformed input. */
uint64_t parseHexU64(const std::string &s);

/**
 * Read one frame from @p fd into @p payload. Returns false on a clean
 * EOF between frames; throws ProtoError on a truncated frame, an
 * oversized length prefix, or a read error.
 */
bool readFrame(int fd, std::string &payload);

/** Write one frame; throws ProtoError on a short write or error. */
void writeFrame(int fd, const std::string &payload);

/**
 * Client-side connection helper: connect + version handshake + one
 * call() per request. Used by sim_client, the throughput bench and the
 * protocol tests; the server side frames directly on its accepted fd.
 */
class ProtoClient
{
  public:
    ProtoClient() = default;
    ~ProtoClient();
    ProtoClient(const ProtoClient &) = delete;
    ProtoClient &operator=(const ProtoClient &) = delete;

    /**
     * Connect to the daemon at @p socket_path and run the version
     * handshake; throws ProtoError on refusal or mismatch.
     */
    void connect(const std::string &socket_path);
    bool connected() const { return fd_ >= 0; }
    void close();
    int fd() const { return fd_; }

    /** Send a request frame (no reply read). */
    void send(const Json &request);
    /** Read the next reply frame; throws ProtoError on EOF. */
    Json readReply();
    /** send() + readReply(). */
    Json call(const Json &request);

  private:
    int fd_ = -1;
};

} // namespace server
} // namespace cmtl

#endif // CMTL_SERVER_PROTO_H
