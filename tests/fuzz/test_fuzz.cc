/**
 * @file
 * SimFuzz tests: generator determinism, the mask-invariance property
 * the shrinker depends on, the spec codec, end-to-end fault detection
 * with shrinker convergence, and replay of the checked-in corpus.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/jit_cpp.h"
#include "core/lint.h"
#include "core/snap.h"
#include "fuzz/fuzz.h"

using namespace cmtl;
using namespace cmtl::fuzz;

namespace {

std::string
corpusDir()
{
    return std::string(CMTL_TEST_DATA_DIR) + "/fuzz_corpus";
}

uint64_t
fingerprintOf(const FuzzSpec &spec)
{
    FuzzDesign top(spec);
    return designFingerprint(*top.elaborate());
}

} // namespace

TEST(FuzzGen, SameSeedSameFingerprint)
{
    for (uint64_t seed : {1ull, 7ull, 123456789ull}) {
        FuzzSpec spec;
        spec.seed = seed;
        EXPECT_EQ(fingerprintOf(spec), fingerprintOf(spec))
            << "seed " << seed;
    }
}

TEST(FuzzGen, DifferentSeedsDifferentDesigns)
{
    FuzzSpec a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(fingerprintOf(a), fingerprintOf(b));
}

// The property the shrinker stands on: disable masks omit logic, never
// declarations, so the fingerprint (net names/widths/flop classes) is
// mask-invariant and StimTape bindings stay valid while pruning.
TEST(FuzzGen, MasksPreserveFingerprint)
{
    FuzzSpec base;
    base.seed = 11;
    FuzzCounts counts = fuzzCounts(base.seed);
    ASSERT_GT(counts.comb, 0);
    ASSERT_GT(counts.tick, 0);
    ASSERT_GT(counts.stim, 0);

    FuzzSpec masked = base;
    masked.comb_off.push_back(0);
    masked.tick_off.push_back(counts.tick - 1);
    masked.stim_off.push_back(0);
    EXPECT_EQ(fingerprintOf(base), fingerprintOf(masked));
}

TEST(FuzzGen, GeneratedDesignIsLintErrorFree)
{
    for (uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull}) {
        FuzzSpec spec;
        spec.seed = seed;
        FuzzDesign top(spec);
        auto elab = top.elaborate();
        LintTool lint;
        for (const LintIssue &issue : lint.run(*elab))
            EXPECT_NE(issue.severity, LintSeverity::Error)
                << "seed " << seed << ": " << issue.check << " @ "
                << issue.path << ": " << issue.message;
    }
}

TEST(FuzzGen, StimulusIsDeterministicAndMaskable)
{
    FuzzSpec spec;
    spec.seed = 21;
    spec.cycles = 64;
    EXPECT_EQ(makeFuzzStim(spec).encode(), makeFuzzStim(spec).encode());

    FuzzSpec masked = spec;
    masked.stim_off.push_back(0);
    EXPECT_NE(makeFuzzStim(spec).encode(),
              makeFuzzStim(masked).encode());
    EXPECT_EQ(makeFuzzStim(spec).numChannels(),
              makeFuzzStim(masked).numChannels());
}

TEST(FuzzSpecCodec, RoundTrip)
{
    FuzzSpec spec;
    spec.seed = 77;
    spec.cycles = 123;
    spec.comb_off = {0, 2};
    spec.tick_off = {1};
    spec.stim_off = {0};
    spec.side_b.backend = "bytecode";
    spec.side_b.threads = 4;
    spec.side_b.layout = "profile";
    spec.side_b.gating = false;
    spec.fault.active = true;
    spec.fault.cycle = 55;
    spec.fault.net_ordinal = 3;
    spec.fault.bit = 9;
    spec.expect = 1;

    FuzzSpec back = FuzzSpec::decodeText(spec.encodeText());
    EXPECT_EQ(back.encodeText(), spec.encodeText());
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.cycles, spec.cycles);
    EXPECT_EQ(back.comb_off, spec.comb_off);
    EXPECT_EQ(back.tick_off, spec.tick_off);
    EXPECT_EQ(back.stim_off, spec.stim_off);
    EXPECT_EQ(back.side_b.backend, "bytecode");
    EXPECT_EQ(back.side_b.threads, 4);
    EXPECT_FALSE(back.side_b.gating);
    EXPECT_TRUE(back.fault.active);
    EXPECT_EQ(back.fault.cycle, 55u);
    EXPECT_EQ(back.expect, 1);
}

TEST(FuzzSpecCodec, RejectsGarbage)
{
    EXPECT_THROW(FuzzSpec::decodeText("not a repro"),
                 std::runtime_error);
    EXPECT_THROW(FuzzSpec::decodeText("CMTLFUZZ v1\nbogus_key 1\n"),
                 std::runtime_error);
    EXPECT_THROW(FuzzSpec::loadFile("/nonexistent/repro.fuzz"),
                 std::runtime_error);
}

TEST(FuzzDiff, CleanSeedsAgreeAcrossQuickMatrix)
{
    FuzzRunner runner;
    std::vector<FuzzSide> matrix = fuzzMatrix(false);
    for (uint64_t seed : {1ull, 2ull}) {
        FuzzSpec spec;
        spec.seed = seed;
        spec.cycles = 80;
        FuzzCaseResult res = runner.runCase(spec, matrix);
        EXPECT_TRUE(res.ok()) << res.summary();
        EXPECT_GT(res.matrix_run, 0);
    }
}

// The acceptance criterion: an intentionally injected backend bug is
// caught by the differential runner and auto-minimized by the shrinker
// into a spec that still replays as a divergence.
TEST(FuzzShrink, InjectedFaultIsCaughtAndMinimized)
{
    FuzzSpec spec;
    spec.seed = 42;
    spec.cycles = 80;
    spec.side_b.backend = "optinterp";
    spec.fault.active = true;
    spec.fault.cycle = 30;
    spec.fault.net_ordinal = 5;
    spec.fault.bit = 2;

    FuzzRunner runner;
    FuzzRunner::PairOutcome outcome = runner.comparePair(spec);
    ASSERT_TRUE(outcome.diverged);

    FuzzShrinker shrinker(runner);
    FuzzShrinkResult sr = shrinker.shrink(spec);
    EXPECT_LE(sr.spec.cycles, spec.cycles);
    EXPECT_GT(sr.removed, 0);
    EXPECT_GE(sr.tried, sr.removed);
    EXPECT_EQ(sr.spec.expect, 1);

    // The minimized spec must reproduce standalone, and replay() must
    // agree with the recorded expectation — including after a codec
    // round trip (what the corpus files go through).
    EXPECT_TRUE(runner.replay(sr.spec));
    FuzzSpec reloaded = FuzzSpec::decodeText(sr.spec.encodeText());
    FuzzRunner::PairOutcome replayed;
    EXPECT_TRUE(runner.replay(reloaded, &replayed));
    EXPECT_TRUE(replayed.diverged);
}

TEST(FuzzShrink, RefusesAgreeingSpec)
{
    FuzzSpec spec;
    spec.seed = 1;
    spec.cycles = 40;
    FuzzRunner runner;
    FuzzShrinker shrinker(runner);
    EXPECT_THROW(shrinker.shrink(spec), std::runtime_error);
}

TEST(FuzzCorpus, ReplayAll)
{
    bool have_compiler = CppJit::compilerAvailable();
    int replayed = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(corpusDir())) {
        if (entry.path().extension() != ".fuzz")
            continue;
        FuzzSpec spec = FuzzSpec::loadFile(entry.path().string());
        if ((spec.side_a.needsCompiler() ||
             spec.side_b.needsCompiler()) &&
            !have_compiler)
            continue;
        FuzzRunner runner;
        FuzzRunner::PairOutcome outcome;
        EXPECT_TRUE(runner.replay(spec, &outcome))
            << entry.path().filename() << ": expectation "
            << (spec.expect == 1 ? "diverge" : "agree")
            << " not met (diverged=" << outcome.diverged << ")";
        ++replayed;
    }
    EXPECT_GE(replayed, 5) << "corpus went missing from "
                           << corpusDir();
}

// Every agreement case in the corpus must also hold across the *full*
// differential matrix (compiled backends included when available), not
// just the pair recorded in the file.
TEST(FuzzCorpus, AgreeCasesSurviveFullMatrix)
{
    FuzzRunner runner;
    std::vector<FuzzSide> matrix = fuzzMatrix(true);
    for (const auto &entry :
         std::filesystem::directory_iterator(corpusDir())) {
        if (entry.path().extension() != ".fuzz")
            continue;
        FuzzSpec spec = FuzzSpec::loadFile(entry.path().string());
        if (spec.expect != 0)
            continue;
        FuzzCaseResult res = runner.runCase(spec, matrix);
        EXPECT_TRUE(res.ok())
            << entry.path().filename() << ": " << res.summary();
    }
}
