#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/sim.h"
#include "core/translate.h"
#include "stdlib/adapters.h"
#include "stdlib/arbiters.h"
#include "stdlib/basic.h"
#include "stdlib/queues.h"
#include "stdlib/test_memory.h"
#include "stdlib/test_source_sink.h"

namespace cmtl {
namespace {

using stdlib::ChildReqRespQueueAdapter;
using stdlib::IntPipelinedMultiplier;
using stdlib::ParentReqRespQueueAdapter;
using stdlib::RegEn;
using stdlib::RegRst;
using stdlib::RoundRobinArbiter;
using stdlib::RtlQueue;
using stdlib::TestMemory;
using stdlib::TestSink;
using stdlib::TestSource;

// --------------------------------------------------------------- basics

TEST(StdlibRegs, RegRstResetsToConstant)
{
    RegRst top(nullptr, "top", 8, 0x5a);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    top.in_.setValue(uint64_t(0x11));
    sim.reset();
    EXPECT_EQ(top.out.u64(), 0x5au);
    sim.cycle();
    EXPECT_EQ(top.out.u64(), 0x11u);
}

TEST(StdlibRegs, RegEnHoldsWithoutEnable)
{
    RegEn top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    top.in_.setValue(uint64_t(7));
    top.en.setValue(uint64_t(1));
    sim.cycle();
    EXPECT_EQ(top.out.u64(), 7u);
    top.in_.setValue(uint64_t(9));
    top.en.setValue(uint64_t(0));
    sim.cycle(3);
    EXPECT_EQ(top.out.u64(), 7u);
}

TEST(StdlibMult, PipelineLatencyMatchesStages)
{
    for (int nstages : {1, 2, 4}) {
        IntPipelinedMultiplier top(nullptr, "top", 32, nstages);
        auto elab = top.elaborate();
        SimulationTool sim(elab);
        top.op_a.setValue(uint64_t(6));
        top.op_b.setValue(uint64_t(7));
        for (int i = 0; i < nstages; ++i) {
            EXPECT_EQ(top.product.u64(), 0u) << "stage " << i;
            sim.cycle();
        }
        EXPECT_EQ(top.product.u64(), 42u) << nstages << " stages";
    }
}

TEST(StdlibMult, PipelinedThroughput)
{
    IntPipelinedMultiplier top(nullptr, "top", 32, 4);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    std::vector<uint64_t> outs;
    for (int i = 1; i <= 10; ++i) {
        top.op_a.setValue(uint64_t(i));
        top.op_b.setValue(uint64_t(i));
        sim.cycle();
        outs.push_back(top.product.u64());
    }
    // Input k (applied before cycle k-1) emerges after cycle k+2:
    // after the fill, products appear back-to-back.
    for (int i = 3; i < 10; ++i)
        EXPECT_EQ(outs[i], uint64_t((i - 2) * (i - 2)));
}

// --------------------------------------------------------------- queues

class QueueHarness : public Model
{
  public:
    TestSource src;
    RtlQueue queue;
    TestSink sink;

    QueueHarness(std::vector<Bits> msgs, int nentries, int src_delay,
                 int sink_delay)
        : Model(nullptr, "harness"),
          src(this, "src", 16, msgs, src_delay),
          queue(this, "queue", 16, nentries),
          sink(this, "sink", 16, msgs, sink_delay)
    {
        connectValRdy(*this, src.out, queue.enq);
        connectValRdy(*this, queue.deq, sink.in_);
    }
};

class QueueSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(QueueSweep, MessagesFlowInOrder)
{
    auto [nentries, src_delay, sink_delay] = GetParam();
    std::vector<Bits> msgs;
    for (int i = 1; i <= 20; ++i)
        msgs.push_back(Bits(16, static_cast<uint64_t>(i * 0x101)));

    QueueHarness harness(msgs, nentries, src_delay, sink_delay);
    auto elab = harness.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    int guard = 0;
    while (!harness.sink.done() && ++guard < 1000)
        sim.cycle();
    EXPECT_TRUE(harness.sink.done()) << "deadlock or lost messages";
    EXPECT_TRUE(harness.sink.errors().empty())
        << harness.sink.errors().front();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QueueSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 3),
                       ::testing::Values(0, 1, 3)));

TEST(StdlibQueue, BackpressureLimitsOccupancy)
{
    // Source streams; the sink accepts one message then stalls
    // indefinitely: the queue fills to capacity and the source stalls.
    std::vector<Bits> msgs(10, Bits(16, 0xaa));
    QueueHarness harness(msgs, 2, 0, 1000000);
    auto elab = harness.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    sim.cycle(20);
    EXPECT_EQ(harness.src.numSent(), 3u); // 1 consumed + 2 buffered
    EXPECT_EQ(harness.sink.numReceived(), 1u);
}

TEST(StdlibQueue, TranslatesToVerilog)
{
    RtlQueue top(nullptr, "top", 16, 2);
    auto elab = top.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("module RtlQueue_16_2"), std::string::npos);
    EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(StdlibQueue, IsFullySpecializable)
{
    RtlQueue top(nullptr, "top", 16, 2);
    auto elab = top.elaborate();
    SimConfig cfg;
    cfg.spec = SpecMode::Bytecode;
    SimulationTool sim(elab, cfg);
    EXPECT_EQ(sim.specStats().numSpecialized, sim.specStats().numBlocks);
}

// -------------------------------------------------------------- arbiter

TEST(StdlibArbiter, GrantsAreOneHotSubsetOfRequests)
{
    RoundRobinArbiter top(nullptr, "top", 4);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    std::mt19937 rng(3);
    for (int i = 0; i < 100; ++i) {
        uint64_t reqs = rng() & 0xf;
        top.reqs.setValue(reqs);
        top.en.setValue(uint64_t(1));
        sim.eval();
        uint64_t grants = top.grants.u64();
        EXPECT_EQ(grants & ~reqs, 0u) << "grant without request";
        EXPECT_LE(__builtin_popcountll(grants), 1) << "not one-hot";
        if (reqs) {
            EXPECT_NE(grants, 0u) << "no grant despite requests";
        }
        sim.cycle();
    }
}

TEST(StdlibArbiter, RoundRobinIsFair)
{
    RoundRobinArbiter top(nullptr, "top", 4);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    top.reqs.setValue(uint64_t(0xf)); // all requesting, always
    top.en.setValue(uint64_t(1));
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 40; ++i) {
        sim.eval();
        uint64_t grants = top.grants.u64();
        for (int k = 0; k < 4; ++k) {
            if (grants & (uint64_t(1) << k))
                ++counts[k];
        }
        sim.cycle();
    }
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(counts[k], 10) << "requester " << k;
}

TEST(StdlibArbiter, PriorityHoldsWithoutEnable)
{
    RoundRobinArbiter top(nullptr, "top", 2);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    top.reqs.setValue(uint64_t(0x3));
    top.en.setValue(uint64_t(0));
    sim.eval();
    uint64_t first = top.grants.u64();
    sim.cycle(3);
    EXPECT_EQ(top.grants.u64(), first); // pointer frozen
}

// --------------------------------------------------------------- memory

class MemHarness : public Model
{
  public:
    ParentReqRespBundle mem_ifc;
    TestMemory mem;
    std::unique_ptr<ParentReqRespQueueAdapter> adapter;

    explicit MemHarness(int latency)
        : Model(nullptr, "harness"),
          mem_ifc(this, "mem_ifc", memIfcTypes()),
          mem(this, "mem", 1, latency)
    {
        connectReqResp(*this, mem_ifc, mem.ifc[0]);
        adapter = std::make_unique<ParentReqRespQueueAdapter>(mem_ifc);
        tickFl("drive", [this] { adapter->xtick(); });
    }
};

TEST(StdlibMemory, WriteThenReadRoundTrip)
{
    MemHarness harness(1);
    auto elab = harness.elaborate();
    SimulationTool sim(elab);
    sim.reset();

    auto types = memIfcTypes();
    harness.adapter->pushReq(
        makeMemReq(types.req, MemReqType::Write, 0x100, 0xdeadbeef));
    harness.adapter->pushReq(
        makeMemReq(types.req, MemReqType::Read, 0x100));
    int guard = 0;
    std::vector<Bits> resps;
    while (resps.size() < 2 && ++guard < 100) {
        sim.cycle();
        while (!harness.adapter->resp_q.empty())
            resps.push_back(harness.adapter->getResp());
    }
    ASSERT_EQ(resps.size(), 2u);
    EXPECT_EQ(types.resp.get(resps[0], "type").toUint64(), 1u);
    EXPECT_EQ(types.resp.get(resps[1], "data").toUint64(), 0xdeadbeefu);
    EXPECT_EQ(harness.mem.numRequests(), 2u);
}

TEST(StdlibMemory, HostPreloadIsVisible)
{
    MemHarness harness(2);
    harness.mem.writeWord(0x40, 1234);
    auto elab = harness.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    auto types = memIfcTypes();
    harness.adapter->pushReq(
        makeMemReq(types.req, MemReqType::Read, 0x40));
    int guard = 0;
    while (harness.adapter->resp_q.empty() && ++guard < 100)
        sim.cycle();
    Bits resp = harness.adapter->getResp();
    EXPECT_EQ(types.resp.get(resp, "data").toUint64(), 1234u);
}

TEST(StdlibMemory, LatencyIsRespected)
{
    for (int latency : {1, 4, 8}) {
        MemHarness harness(latency);
        auto elab = harness.elaborate();
        SimulationTool sim(elab);
        sim.reset();
        auto types = memIfcTypes();
        harness.adapter->pushReq(
            makeMemReq(types.req, MemReqType::Read, 0x0));
        int cycles = 0;
        while (harness.adapter->resp_q.empty() && cycles < 100) {
            sim.cycle();
            ++cycles;
        }
        // Higher latency -> strictly more cycles to respond.
        EXPECT_GE(cycles, latency) << "latency " << latency;
        EXPECT_LT(cycles, latency + 8) << "latency " << latency;
    }
}

TEST(StdlibMemory, PipelinedRequestsSustainThroughput)
{
    MemHarness harness(4);
    auto elab = harness.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    auto types = memIfcTypes();
    int received = 0;
    int sent = 0;
    for (int cycle = 0; cycle < 120; ++cycle) {
        if (sent < 64 && !harness.adapter->req_q.full()) {
            harness.adapter->pushReq(makeMemReq(
                types.req, MemReqType::Read,
                static_cast<uint64_t>(sent) * 4));
            ++sent;
        }
        sim.cycle();
        while (!harness.adapter->resp_q.empty()) {
            harness.adapter->getResp();
            ++received;
        }
    }
    EXPECT_EQ(received, 64);
    // Amortized throughput near 1 per cycle: 64 reqs in ~<110 cycles.
    EXPECT_GE(received, 60);
}

// ----------------------------------------------------------- src / sink

TEST(StdlibSrcSink, DirectConnectionDelivers)
{
    class Direct : public Model
    {
      public:
        TestSource src;
        TestSink sink;
        Direct(std::vector<Bits> msgs)
            : Model(nullptr, "d"), src(this, "src", 8, msgs, 0),
              sink(this, "sink", 8, msgs, 0)
        {
            connectValRdy(*this, src.out, sink.in_);
        }
    };
    std::vector<Bits> msgs;
    for (int i = 0; i < 5; ++i)
        msgs.push_back(Bits(8, static_cast<uint64_t>(i + 1)));
    Direct d(msgs);
    auto elab = d.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    int guard = 0;
    while (!d.sink.done() && ++guard < 50)
        sim.cycle();
    EXPECT_TRUE(d.sink.done());
    EXPECT_TRUE(d.sink.errors().empty());
}

TEST(StdlibSrcSink, SinkReportsMismatches)
{
    class Direct : public Model
    {
      public:
        TestSource src;
        TestSink sink;
        Direct(std::vector<Bits> send, std::vector<Bits> expect)
            : Model(nullptr, "d"), src(this, "src", 8, send, 0),
              sink(this, "sink", 8, expect, 0)
        {
            connectValRdy(*this, src.out, sink.in_);
        }
    };
    Direct d({Bits(8, 1), Bits(8, 2)}, {Bits(8, 1), Bits(8, 3)});
    auto elab = d.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    sim.cycle(20);
    ASSERT_EQ(d.sink.errors().size(), 1u);
    EXPECT_NE(d.sink.errors()[0].find("expected 0x03"),
              std::string::npos);
}

} // namespace
} // namespace cmtl
