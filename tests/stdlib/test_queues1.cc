/**
 * Single-element bypass and pipelined queues: latency and throughput
 * properties, correctness under random stall patterns, and
 * composition into chains.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/sim.h"
#include "core/translate.h"
#include "stdlib/queues.h"
#include "stdlib/test_source_sink.h"

namespace cmtl {
namespace {

using stdlib::BypassQueue1;
using stdlib::PipeQueue1;
using stdlib::RtlQueue;
using stdlib::TestSink;
using stdlib::TestSource;

/** A depth-1 shift queue with the 3-argument harness signature. */
class ShiftQueue1 : public RtlQueue
{
  public:
    ShiftQueue1(Model *parent, const std::string &name, int nbits)
        : RtlQueue(parent, name, nbits, 1)
    {}
};

template <typename QueueT>
class Harness : public Model
{
  public:
    TestSource src;
    QueueT queue;
    TestSink sink;

    Harness(std::vector<Bits> msgs, int src_delay, int sink_delay)
        : Model(nullptr, "h"), src(this, "src", 16, msgs, src_delay),
          queue(this, "q", 16), sink(this, "sink", 16, msgs, sink_delay)
    {
        connectValRdy(*this, src.out, queue.enq);
        connectValRdy(*this, queue.deq, sink.in_);
    }
};

std::vector<Bits>
messages(int count)
{
    std::vector<Bits> msgs;
    for (int i = 1; i <= count; ++i)
        msgs.push_back(Bits(16, static_cast<uint64_t>(i)));
    return msgs;
}

template <typename QueueT>
uint64_t
runToCompletion(int src_delay, int sink_delay, int count = 20)
{
    Harness<QueueT> h(messages(count), src_delay, sink_delay);
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint64_t cycles = 0;
    while (!h.sink.done() && cycles < 2000) {
        sim.cycle();
        ++cycles;
    }
    EXPECT_TRUE(h.sink.done());
    EXPECT_TRUE(h.sink.errors().empty()) << h.sink.errors().front();
    return cycles;
}

TEST(Queues1, BypassDeliversInOrderUnderStalls)
{
    for (int sd : {0, 1, 3}) {
        for (int kd : {0, 1, 3})
            runToCompletion<BypassQueue1>(sd, kd);
    }
}

TEST(Queues1, PipeDeliversInOrderUnderStalls)
{
    for (int sd : {0, 1, 3}) {
        for (int kd : {0, 1, 3})
            runToCompletion<PipeQueue1>(sd, kd);
    }
}

TEST(Queues1, ThroughputOrdering)
{
    // With a streaming source and sink, the pipe and bypass queues
    // sustain one message per cycle; the 1-entry shift queue only
    // every other cycle (it cannot refill while draining).
    uint64_t pipe = runToCompletion<PipeQueue1>(0, 0, 40);
    uint64_t bypass = runToCompletion<BypassQueue1>(0, 0, 40);
    uint64_t normal = runToCompletion<ShiftQueue1>(0, 0, 40);
    EXPECT_LE(pipe, 45u);
    EXPECT_LE(bypass, 45u);
    EXPECT_GE(normal, 75u);
}

TEST(Queues1, BypassHasZeroCycleLatency)
{
    // A single message traverses bypass combinationally: the sink
    // fires on the same cycle the source asserts val.
    Harness<BypassQueue1> h(messages(1), 0, 0);
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset(); // after reset, source drives val next cycle
    int cycles_until_done = 0;
    while (!h.sink.done() && cycles_until_done < 10) {
        sim.cycle();
        ++cycles_until_done;
    }
    Harness<PipeQueue1> hp(messages(1), 0, 0);
    auto elab2 = hp.elaborate();
    SimulationTool sim2(elab2);
    sim2.reset();
    int pipe_cycles = 0;
    while (!hp.sink.done() && pipe_cycles < 10) {
        sim2.cycle();
        ++pipe_cycles;
    }
    EXPECT_LT(cycles_until_done, pipe_cycles);
}

TEST(Queues1, ChainedMixedQueuesPreserveOrder)
{
    // src -> pipe -> bypass -> shift(2) -> sink.
    class Chain : public Model
    {
      public:
        TestSource src;
        PipeQueue1 q1;
        BypassQueue1 q2;
        RtlQueue q3;
        TestSink sink;
        Chain(std::vector<Bits> msgs)
            : Model(nullptr, "chain"), src(this, "src", 16, msgs, 1),
              q1(this, "q1", 16), q2(this, "q2", 16),
              q3(this, "q3", 16, 2), sink(this, "sink", 16, msgs, 2)
        {
            connectValRdy(*this, src.out, q1.enq);
            connectValRdy(*this, q1.deq, q2.enq);
            connectValRdy(*this, q2.deq, q3.enq);
            connectValRdy(*this, q3.deq, sink.in_);
        }
    };
    Chain chain(messages(30));
    auto elab = chain.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    int guard = 0;
    while (!chain.sink.done() && ++guard < 2000)
        sim.cycle();
    EXPECT_TRUE(chain.sink.done());
    EXPECT_TRUE(chain.sink.errors().empty());
}

TEST(Queues1, TranslateAndSpecialize)
{
    for (int variant = 0; variant < 2; ++variant) {
        std::unique_ptr<Model> q;
        if (variant == 0)
            q = std::make_unique<BypassQueue1>(nullptr, "q", 8);
        else
            q = std::make_unique<PipeQueue1>(nullptr, "q", 8);
        auto elab = q->elaborate();
        std::string v = TranslationTool().translate(*elab);
        EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
        SimConfig cfg;
        cfg.spec = SpecMode::Bytecode;
        SimulationTool sim(elab, cfg);
        EXPECT_EQ(sim.specStats().numSpecialized,
                  sim.specStats().numBlocks);
    }
}

} // namespace
} // namespace cmtl
