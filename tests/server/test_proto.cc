/**
 * SimServer wire protocol, attacked from below: the JSON codec
 * round-trips and rejects malformed text with diagnostics; the frame
 * layer distinguishes a clean EOF from a truncated frame and refuses
 * an oversized length prefix without reading the payload; and a live
 * daemon enforces the session rules — version-matched hello first,
 * unknown verbs answered (not dropped), malformed JSON answered with
 * the connection kept, and a mid-job client disconnect reaping the
 * orphaned job so its scheduler slot frees up.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "server/proto.h"
#include "server/server.h"

namespace cmtl {
namespace server {
namespace {

// ------------------------------------------------------------- JSON

TEST(Json, RoundTripObject)
{
    Json obj = Json::object();
    obj.set("verb", Json::string("submit"));
    obj.set("cycles", Json::number(uint64_t{12345}));
    obj.set("injection", Json::number(0.25));
    obj.set("detach", Json::boolean(true));
    obj.set("nothing", Json());
    Json arr = Json::array();
    arr.push(Json::number(1));
    arr.push(Json::string("two"));
    obj.set("list", std::move(arr));

    Json back = jsonParse(obj.encode());
    EXPECT_EQ(back.find("verb")->asStr(), "submit");
    EXPECT_EQ(back.find("cycles")->asU64(), 12345u);
    EXPECT_DOUBLE_EQ(back.find("injection")->asNum(), 0.25);
    EXPECT_TRUE(back.find("detach")->asBool());
    EXPECT_EQ(back.find("nothing")->kind, Json::Kind::Null);
    ASSERT_EQ(back.find("list")->arr.size(), 2u);
    EXPECT_EQ(back.find("list")->arr[1].asStr(), "two");
    EXPECT_EQ(back.find("absent"), nullptr);
}

TEST(Json, StringEscapes)
{
    Json v = Json::string("a\"b\\c\n\t\x01z");
    Json back = jsonParse(v.encode());
    EXPECT_EQ(back.asStr(), "a\"b\\c\n\t\x01z");
    // Unicode escapes decode to UTF-8.
    EXPECT_EQ(jsonParse("\"\\u0041\\u00e9\"").asStr(), "A\xc3\xa9");
}

TEST(Json, SetOverwritesKey)
{
    Json obj = Json::object();
    obj.set("k", Json::number(1));
    obj.set("k", Json::number(2));
    EXPECT_EQ(obj.obj.size(), 1u);
    EXPECT_EQ(obj.find("k")->asInt(), 2);
}

TEST(Json, MalformedInputsThrow)
{
    const char *bad[] = {
        "",           "{",          "[1,2",      "{\"a\":}",
        "{\"a\" 1}",  "tru",        "\"unterminated",
        "{\"a\":1} trailing",       "01",        "1e",
        "{\"a\":\"\\q\"}",          "nul",       "[1,]",
    };
    for (const char *text : bad)
        EXPECT_THROW(jsonParse(text), ProtoError) << text;
}

TEST(Json, HexDigests)
{
    EXPECT_EQ(hexU64(0), "0000000000000000");
    EXPECT_EQ(hexU64(0xdeadbeefcafe1234ull), "deadbeefcafe1234");
    EXPECT_EQ(parseHexU64("deadbeefcafe1234"), 0xdeadbeefcafe1234ull);
    EXPECT_THROW(parseHexU64(""), ProtoError);
    EXPECT_THROW(parseHexU64("xyz"), ProtoError);
    EXPECT_THROW(parseHexU64("deadbeefcafe123"), ProtoError);   // short
    EXPECT_THROW(parseHexU64("deadbeefcafe12345"), ProtoError); // long
}

// ---------------------------------------------------------- framing

struct SocketPair
{
    int a = -1, b = -1;
    SocketPair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }
    ~SocketPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

TEST(Framing, RoundTrip)
{
    SocketPair sp;
    writeFrame(sp.a, "{\"x\":1}");
    writeFrame(sp.a, ""); // empty payload is a legal frame
    std::string payload;
    ASSERT_TRUE(readFrame(sp.b, payload));
    EXPECT_EQ(payload, "{\"x\":1}");
    ASSERT_TRUE(readFrame(sp.b, payload));
    EXPECT_EQ(payload, "");
}

TEST(Framing, CleanEofBetweenFrames)
{
    SocketPair sp;
    writeFrame(sp.a, "last");
    ::close(sp.a);
    sp.a = -1;
    std::string payload;
    ASSERT_TRUE(readFrame(sp.b, payload));
    EXPECT_FALSE(readFrame(sp.b, payload)); // EOF, not an error
}

TEST(Framing, TruncatedLengthPrefix)
{
    SocketPair sp;
    const char two[] = {0x10, 0x00};
    ASSERT_EQ(::send(sp.a, two, 2, 0), 2);
    ::close(sp.a);
    sp.a = -1;
    std::string payload;
    EXPECT_THROW(readFrame(sp.b, payload), ProtoError);
}

TEST(Framing, TruncatedPayload)
{
    SocketPair sp;
    uint32_t len = 10;
    ASSERT_EQ(::send(sp.a, &len, 4, 0), 4);
    ASSERT_EQ(::send(sp.a, "abc", 3, 0), 3);
    ::close(sp.a);
    sp.a = -1;
    std::string payload;
    EXPECT_THROW(readFrame(sp.b, payload), ProtoError);
}

TEST(Framing, OversizedLengthPrefixRejected)
{
    SocketPair sp;
    uint32_t len = kMaxFrameBytes + 1;
    ASSERT_EQ(::send(sp.a, &len, 4, 0), 4);
    std::string payload;
    // Rejected from the prefix alone -- no payload was ever sent, so
    // a blocking read of it would hang here.
    EXPECT_THROW(readFrame(sp.b, payload), ProtoError);
}

// --------------------------------------------- daemon session rules

class ProtoServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        static int counter = 0;
        cfg_.socket_path = "/tmp/cmtl-proto-test-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter++) + ".sock";
        cfg_.jobs = 1;
        cfg_.queue_cap = 8;
        server_ = std::make_unique<SimServer>(cfg_);
        server_->registerDefaultCorpus();
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
    }
    void TearDown() override { server_->stop(); }

    int rawConnect()
    {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<struct sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    }

    ServerConfig cfg_;
    std::unique_ptr<SimServer> server_;
};

TEST_F(ProtoServerTest, VersionMismatchRefusedAndClosed)
{
    int fd = rawConnect();
    Json hello = Json::object();
    hello.set("verb", Json::string("hello"));
    hello.set("version", Json::number(99));
    writeFrame(fd, hello.encode());
    std::string payload;
    ASSERT_TRUE(readFrame(fd, payload));
    Json reply = jsonParse(payload);
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_NE(reply.find("error")->asStr().find("version"),
              std::string::npos);
    // The daemon hangs up after a refused handshake.
    EXPECT_FALSE(readFrame(fd, payload));
    ::close(fd);
}

TEST_F(ProtoServerTest, FirstFrameMustBeHello)
{
    int fd = rawConnect();
    Json req = Json::object();
    req.set("verb", Json::string("status"));
    writeFrame(fd, req.encode());
    std::string payload;
    ASSERT_TRUE(readFrame(fd, payload));
    Json reply = jsonParse(payload);
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_NE(reply.find("error")->asStr().find("hello"),
              std::string::npos);
    EXPECT_FALSE(readFrame(fd, payload));
    ::close(fd);
}

TEST_F(ProtoServerTest, UnknownVerbAnswered)
{
    ProtoClient client;
    client.connect(cfg_.socket_path);
    Json req = Json::object();
    req.set("verb", Json::string("frobnicate"));
    Json reply = client.call(req);
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_NE(reply.find("error")->asStr().find("unknown verb"),
              std::string::npos);
}

TEST_F(ProtoServerTest, MalformedJsonAnsweredConnectionKept)
{
    ProtoClient client;
    client.connect(cfg_.socket_path);
    writeFrame(client.fd(), "{this is not json");
    Json reply = client.readReply();
    EXPECT_FALSE(reply.find("ok")->asBool());
    // The frame boundary is intact, so the session continues.
    Json req = Json::object();
    req.set("verb", Json::string("status"));
    Json ok = client.call(req);
    EXPECT_TRUE(ok.find("ok")->asBool());
}

TEST_F(ProtoServerTest, DisconnectMidJobReapsIt)
{
    // Submit a job far too long to finish, then vanish.
    int victim_id;
    {
        ProtoClient client;
        client.connect(cfg_.socket_path);
        Json req = Json::object();
        req.set("verb", Json::string("submit"));
        req.set("level", Json::string("cl"));
        req.set("cycles", Json::number(uint64_t{50000000}));
        Json reply = client.call(req);
        ASSERT_TRUE(reply.find("ok")->asBool())
            << reply.find("error")->asStr();
        victim_id = reply.find("job")->asInt();
        client.close(); // abrupt: no cancel, no shutdown
    }

    // A second client sees the orphan reach a terminal state and the
    // single scheduler slot come free for its own job.
    ProtoClient client;
    client.connect(cfg_.socket_path);
    Json res_req = Json::object();
    res_req.set("verb", Json::string("result"));
    res_req.set("job", Json::number(victim_id));
    Json res = client.call(res_req);
    EXPECT_EQ(res.find("state")->asStr(), "cancelled");

    Json req = Json::object();
    req.set("verb", Json::string("submit"));
    req.set("level", Json::string("cl"));
    req.set("cycles", Json::number(uint64_t{50}));
    Json reply = client.call(req);
    ASSERT_TRUE(reply.find("ok")->asBool());
    res_req.set("job", *reply.find("job"));
    res = client.call(res_req);
    EXPECT_EQ(res.find("state")->asStr(), "done");
}

TEST_F(ProtoServerTest, DetachedJobSurvivesDisconnect)
{
    int job_id;
    {
        ProtoClient client;
        client.connect(cfg_.socket_path);
        Json req = Json::object();
        req.set("verb", Json::string("submit"));
        req.set("level", Json::string("cl"));
        req.set("cycles", Json::number(uint64_t{200}));
        req.set("detach", Json::boolean(true));
        Json reply = client.call(req);
        ASSERT_TRUE(reply.find("ok")->asBool());
        job_id = reply.find("job")->asInt();
    }
    ProtoClient client;
    client.connect(cfg_.socket_path);
    Json res_req = Json::object();
    res_req.set("verb", Json::string("result"));
    res_req.set("job", Json::number(job_id));
    Json res = client.call(res_req);
    EXPECT_EQ(res.find("state")->asStr(), "done");
}

} // namespace
} // namespace server
} // namespace cmtl
