/**
 * SimServer job scheduler and daemon, end to end: a job run through
 * the scheduler produces the digest of the equivalent one-shot run on
 * every backend and thread count (including ParSim jobs drawing
 * multiple budget units); a long job preempted for a short one —
 * paused at a cycle boundary, snapshotted, torn down, rebuilt,
 * restored — still finishes with the unpreempted digest; cancel works
 * queued and running; the bounded queue rejects overflow with a
 * diagnostic; and a batched sweep over the wire streams every grid
 * point, each digest matching its one-shot baseline.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>

#include "server/jobs.h"
#include "server/server.h"

namespace cmtl {
namespace server {
namespace {

JobSpec
clSpec(uint64_t cycles, double injection = 0.30,
       const std::string &backend = "optinterp")
{
    JobSpec spec;
    spec.level = "cl";
    spec.cycles = cycles;
    spec.injection = injection;
    SimConfig parsed = SimConfig::fromString(backend);
    spec.cfg.backend = parsed.backend;
    spec.cfg.exec = parsed.exec;
    spec.cfg.spec = parsed.spec;
    return spec;
}

TEST(JobScheduler, DigestParityWithOneShot)
{
    JobScheduler sched(2, 16, defaultCorpusFactory());
    for (const char *backend : {"interp", "optinterp", "bytecode"}) {
        JobSpec spec = clSpec(600, 0.25, backend);
        std::string error;
        int id = sched.submit(spec, 0, &error);
        ASSERT_GE(id, 0) << error;
        JobInfo info = sched.awaitResult(id);
        ASSERT_EQ(info.state, JobState::Done) << info.result.error;
        JobResult oneshot = runOneShot(spec, defaultCorpusFactory());
        EXPECT_EQ(info.result.digest, oneshot.digest) << backend;
        EXPECT_EQ(info.result.cycles, oneshot.cycles);
        EXPECT_EQ(info.result.backend, oneshot.backend);
    }
}

TEST(JobScheduler, ParSimJobMatchesSequential)
{
    JobScheduler sched(2, 16, defaultCorpusFactory());
    JobSpec par = clSpec(500);
    par.cfg.threads = 2; // draws the whole budget
    std::string error;
    int id = sched.submit(par, 0, &error);
    ASSERT_GE(id, 0) << error;
    JobInfo info = sched.awaitResult(id);
    ASSERT_EQ(info.state, JobState::Done) << info.result.error;

    JobSpec seq = clSpec(500);
    JobResult oneshot = runOneShot(seq, defaultCorpusFactory());
    EXPECT_EQ(info.result.digest, oneshot.digest);
}

// The headline preemption property: pause -> snapshot -> teardown ->
// rebuild -> restore -> finish is invisible in the final digest.
TEST(JobScheduler, PreemptedJobFinishesBitIdentical)
{
    JobScheduler sched(1, 16, defaultCorpusFactory());
    // interp is the slowest backend: plenty of boundary crossings to
    // catch the pause long before the long job finishes.
    JobSpec long_spec = clSpec(20000, 0.30, "interp");
    std::string error;
    int long_id = sched.submit(long_spec, 0, &error);
    ASSERT_GE(long_id, 0) << error;

    // Wait until the long job is actually running and has progressed.
    for (int i = 0; i < 2000; ++i) {
        std::vector<JobInfo> st = sched.status(long_id);
        ASSERT_EQ(st.size(), 1u);
        if (st[0].state == JobState::Running && st[0].cycle > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    JobSpec short_spec = clSpec(100, 0.10, "interp");
    int short_id = sched.submit(short_spec, 0, &error);
    ASSERT_GE(short_id, 0) << error;

    JobInfo short_info = sched.awaitResult(short_id);
    JobInfo long_info = sched.awaitResult(long_id);
    ASSERT_EQ(short_info.state, JobState::Done)
        << short_info.result.error;
    ASSERT_EQ(long_info.state, JobState::Done)
        << long_info.result.error;
    EXPECT_GE(long_info.preemptions, 1);
    EXPECT_GE(sched.preemptionCount(), 1);

    EXPECT_EQ(long_info.result.digest,
              runOneShot(long_spec, defaultCorpusFactory()).digest);
    EXPECT_EQ(short_info.result.digest,
              runOneShot(short_spec, defaultCorpusFactory()).digest);
}

TEST(JobScheduler, CancelQueuedAndRunning)
{
    JobScheduler sched(1, 16, defaultCorpusFactory());
    std::string error;
    int running = sched.submit(clSpec(2000000, 0.30, "interp"), 0,
                               &error);
    ASSERT_GE(running, 0) << error;
    int queued = sched.submit(clSpec(1000000, 0.30, "interp"), 0,
                              &error);
    ASSERT_GE(queued, 0) << error;

    EXPECT_TRUE(sched.cancel(queued));
    JobInfo qi = sched.awaitResult(queued);
    EXPECT_EQ(qi.state, JobState::Cancelled);

    EXPECT_TRUE(sched.cancel(running));
    JobInfo ri = sched.awaitResult(running);
    EXPECT_EQ(ri.state, JobState::Cancelled);
    EXPECT_LT(ri.result.cycles, 2000000u); // stopped at a boundary

    EXPECT_FALSE(sched.cancel(running)); // already terminal
    EXPECT_FALSE(sched.cancel(424242));  // unknown
}

TEST(JobScheduler, QueueCapRejectsOverflow)
{
    JobScheduler sched(1, 2, defaultCorpusFactory());
    std::string error;
    int a = sched.submit(clSpec(2000000, 0.30, "interp"), 0, &error);
    ASSERT_GE(a, 0);
    int b = sched.submit(clSpec(2000000, 0.30, "interp"), 0, &error);
    ASSERT_GE(b, 0);
    int c = sched.submit(clSpec(100), 0, &error);
    EXPECT_EQ(c, -1);
    EXPECT_NE(error.find("queue full"), std::string::npos);
    sched.cancel(a);
    sched.cancel(b);
}

TEST(JobScheduler, AwaitAnyClaimsEachJobOnce)
{
    JobScheduler sched(2, 16, defaultCorpusFactory());
    std::vector<int> ids;
    std::string error;
    for (int i = 0; i < 5; ++i) {
        int id = sched.submit(clSpec(50 + 10 * i), 0, &error);
        ASSERT_GE(id, 0) << error;
        ids.push_back(id);
    }
    std::map<int, int> seen;
    for (int i = 0; i < 5; ++i) {
        int done = sched.awaitAny(ids);
        ASSERT_GE(done, 0);
        ++seen[done];
    }
    EXPECT_EQ(seen.size(), 5u); // five distinct ids, once each
    EXPECT_EQ(sched.awaitAny(ids), -1);
}

TEST(JobScheduler, BadSpecFailsWithDiagnostic)
{
    JobScheduler sched(1, 8, defaultCorpusFactory());
    JobSpec spec = clSpec(100);
    spec.level = "gate"; // the factory rejects unknown levels
    std::string error;
    int id = sched.submit(spec, 0, &error);
    ASSERT_GE(id, 0) << error;
    JobInfo info = sched.awaitResult(id);
    EXPECT_EQ(info.state, JobState::Failed);
    EXPECT_NE(info.result.error.find("unknown level"),
              std::string::npos);
}

TEST(JobScheduler, CheckpointFilesAreJobTagged)
{
    // Two concurrent jobs checkpointing to the same base path must not
    // clobber each other: the manager scopes files by job id.
    std::string base = "/tmp/cmtl-test-server-ckpt-" +
                       std::to_string(::getpid());
    std::remove(base.c_str());
    JobScheduler sched(2, 8, defaultCorpusFactory());
    std::string error;
    JobSpec spec = clSpec(300);
    spec.checkpoint = base;
    spec.checkpoint_every = 100;
    int a = sched.submit(spec, 0, &error);
    ASSERT_GE(a, 0) << error;
    int b = sched.submit(spec, 0, &error);
    ASSERT_GE(b, 0) << error;
    ASSERT_EQ(sched.awaitResult(a).state, JobState::Done);
    ASSERT_EQ(sched.awaitResult(b).state, JobState::Done);

    std::string file_a = base + ".job" + std::to_string(a);
    std::string file_b = base + ".job" + std::to_string(b);
    EXPECT_EQ(::access(file_a.c_str(), F_OK), 0) << file_a;
    EXPECT_EQ(::access(file_b.c_str(), F_OK), 0) << file_b;
    EXPECT_NE(::access(base.c_str(), F_OK), 0)
        << "untagged checkpoint written despite job scoping";
    // Both files restore: digests land on the same deterministic run.
    SimSnapshot snap_a = snapLoadFile(file_a);
    SimSnapshot snap_b = snapLoadFile(file_b);
    EXPECT_EQ(snap_a.digest(), snap_b.digest());
    std::remove(file_a.c_str());
    std::remove(file_b.c_str());
}

// ------------------------------------------------- sweep over the wire

TEST(SweepProtocol, GridStreamsEveryPointWithOneShotDigests)
{
    ServerConfig cfg;
    cfg.socket_path = "/tmp/cmtl-test-sweep-" +
                      std::to_string(::getpid()) + ".sock";
    cfg.jobs = 2;
    cfg.queue_cap = 4; // smaller than the grid: exercises wave submit
    SimServer server(cfg);
    server.registerDefaultCorpus();
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ProtoClient client;
    client.connect(cfg.socket_path);
    Json req = Json::object();
    req.set("verb", Json::string("sweep"));
    req.set("level", Json::string("cl"));
    req.set("cycles", Json::number(uint64_t{400}));
    Json injections = Json::array();
    for (double inj : {0.05, 0.15, 0.25})
        injections.push(Json::number(inj));
    req.set("injections", std::move(injections));
    Json backends = Json::array();
    backends.push(Json::string("interp"));
    backends.push(Json::string("optinterp"));
    req.set("backends", std::move(backends));
    client.send(req);

    Json head = client.readReply();
    ASSERT_TRUE(head.find("ok")->asBool());
    ASSERT_EQ(head.find("points")->asInt(), 6);

    std::map<int, Json> points; // index -> frame
    for (;;) {
        Json frame = client.readReply();
        if (frame.find("sweep_done")) {
            EXPECT_EQ(frame.find("points")->asInt(), 6);
            break;
        }
        ASSERT_TRUE(frame.find("ok")->asBool())
            << frame.find("error")->asStr();
        EXPECT_EQ(frame.find("state")->asStr(), "done");
        points[frame.find("index")->asInt()] = frame;
    }
    ASSERT_EQ(points.size(), 6u); // every grid point exactly once

    // Each streamed digest equals the equivalent one-shot run's, and
    // backends agree with each other at equal injection.
    const double grid_inj[] = {0.05, 0.15, 0.25};
    for (const auto &kv : points) {
        const Json &frame = kv.second;
        JobSpec spec;
        spec.level = "cl";
        spec.cycles = 400;
        spec.injection = grid_inj[kv.first % 3];
        SimConfig parsed =
            SimConfig::fromString(frame.find("backend")->asStr());
        spec.cfg.backend = parsed.backend;
        spec.cfg.exec = parsed.exec;
        spec.cfg.spec = parsed.spec;
        JobResult oneshot = runOneShot(spec, defaultCorpusFactory());
        EXPECT_EQ(frame.find("digest")->asStr(), hexU64(oneshot.digest))
            << "index " << kv.first;
    }
    server.stop();
}

} // namespace
} // namespace server
} // namespace cmtl
