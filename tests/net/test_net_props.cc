/**
 * Network invariant properties, checked across implementation levels
 * and random configurations:
 *   - conservation: no message is lost or duplicated;
 *   - point-to-point ordering: XY dimension-ordered routing delivers
 *     same-source/same-destination messages in order;
 *   - payload integrity: messages arrive unmodified at the right
 *     terminal.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/sim.h"
#include "net/traffic.h"

namespace cmtl {
namespace {

using namespace net;

/** Harness injecting hand-built messages and logging ejections. */
class PropHarness : public Model
{
  public:
    struct Received
    {
        int terminal;
        Bits msg;
        uint64_t cycle;
    };

    std::unique_ptr<Model> holder;
    std::deque<InValRdy> *nin = nullptr;
    std::deque<OutValRdy> *nout = nullptr;
    BitStructLayout layout;
    std::vector<std::deque<Bits>> srcq;
    std::vector<Received> received;
    uint64_t now = 0;

    PropHarness(NetLevel level, int nrouters)
        : Model(nullptr, "prop"), layout(makeNetMsg(nrouters, 16, 16)),
          srcq(nrouters)
    {
        switch (level) {
          case NetLevel::FL: {
            auto net = std::make_unique<NetworkFL>(this, "net",
                                                   nrouters, 16, 16, 4);
            nin = &net->in_;
            nout = &net->out;
            holder = std::move(net);
            break;
          }
          case NetLevel::CL: {
            auto net = std::make_unique<MeshNetworkCL>(
                this, "net", nrouters, 16, 16, 4);
            nin = &net->in_;
            nout = &net->out;
            holder = std::move(net);
            break;
          }
          case NetLevel::CLSpec: {
            auto net = std::make_unique<MeshNetworkCLSpec>(
                this, "net", nrouters, 16, 16, 4);
            nin = &net->in_;
            nout = &net->out;
            holder = std::move(net);
            break;
          }
          case NetLevel::RTL: {
            auto net = std::make_unique<MeshNetworkRTL>(
                this, "net", nrouters, 16, 16, 4);
            nin = &net->in_;
            nout = &net->out;
            holder = std::move(net);
            break;
          }
        }
        const int n = nrouters;
        tickFl("drive", [this, n] {
            for (int t = 0; t < n; ++t) {
                if ((*nout)[t].fire())
                    received.push_back(
                        Received{t, (*nout)[t].msg.value(), now});
                (*nout)[t].rdy.setNext(uint64_t(1));
                if ((*nin)[t].fire())
                    srcq[t].pop_front();
                bool have = !srcq[t].empty();
                (*nin)[t].val.setNext(uint64_t(have ? 1 : 0));
                if (have)
                    (*nin)[t].msg.setNext(srcq[t].front());
            }
            ++now;
        });
    }

    void
    inject(int src, int dest, uint64_t payload)
    {
        srcq[src].push_back(layout.pack(
            {static_cast<uint64_t>(dest), static_cast<uint64_t>(src),
             payload & 0xf, payload & 0xffff}));
    }

    uint64_t
    pendingAtSources() const
    {
        uint64_t total = 0;
        for (const auto &q : srcq)
            total += q.size();
        return total;
    }
};

class NetProps
    : public ::testing::TestWithParam<std::tuple<NetLevel, int>>
{};

TEST_P(NetProps, ConservationOrderingAndIntegrity)
{
    auto [level, seed] = GetParam();
    const int n = 16;
    PropHarness h(level, n);
    std::mt19937_64 rng(static_cast<uint64_t>(seed) * 17 + 3);

    // Inject a random batch with per-(src,dest) sequence numbers.
    std::map<std::pair<int, int>, uint64_t> seq;
    const int kMessages = 300;
    for (int i = 0; i < kMessages; ++i) {
        int src = static_cast<int>(rng() % n);
        int dest = static_cast<int>(rng() % n);
        uint64_t s = seq[{src, dest}]++;
        h.inject(src, dest, s);
    }

    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    int guard = 0;
    while ((h.pendingAtSources() > 0 ||
            h.received.size() < static_cast<size_t>(kMessages)) &&
           ++guard < 20000)
        sim.cycle();

    // Conservation: exactly the injected messages arrive.
    ASSERT_EQ(h.received.size(), static_cast<size_t>(kMessages))
        << netLevelName(level);

    std::map<std::pair<int, int>, uint64_t> next_expected;
    std::map<std::pair<int, int>, uint64_t> count;
    for (const auto &r : h.received) {
        int dest = static_cast<int>(
            h.layout.get(r.msg, "dest").toUint64());
        int src = static_cast<int>(h.layout.get(r.msg, "src").toUint64());
        uint64_t payload = h.layout.get(r.msg, "payload").toUint64();
        // Integrity: ejected at the addressed terminal.
        EXPECT_EQ(dest, r.terminal);
        // Point-to-point ordering under dimension-ordered routing.
        auto key = std::make_pair(src, dest);
        uint64_t expected_seq = next_expected[key] & 0xffff;
        EXPECT_EQ(payload, expected_seq)
            << "src " << src << " dest " << dest;
        ++next_expected[key];
        ++count[key];
    }
    for (const auto &[key, expected] : seq)
        EXPECT_EQ(count[key], expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetProps,
    ::testing::Combine(::testing::Values(NetLevel::FL, NetLevel::CL,
                                         NetLevel::CLSpec,
                                         NetLevel::RTL),
                       ::testing::Values(1, 2, 3)),
    [](const auto &info) {
        return std::string(netLevelName(std::get<0>(info.param))) +
               "_s" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace cmtl
