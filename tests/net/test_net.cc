#include <gtest/gtest.h>

#include "core/lint.h"
#include "core/sim.h"
#include "core/translate.h"
#include "net/fl_network.h"
#include "net/mesh.h"
#include "net/traffic.h"
#include "refcpp/refnet.h"

namespace cmtl {
namespace {

using net::MeshNetworkCL;
using net::MeshNetworkRTL;
using net::MeshTrafficTop;
using net::NetLevel;
using net::NetworkFL;
using net::xyHops;
using net::xyRoute;

// -------------------------------------------------------------- routing

TEST(Routing, XyRouteIsDimensionOrdered)
{
    // 4x4 mesh: router 5 = (1,1).
    EXPECT_EQ(xyRoute(5, 5, 4), net::TERM);
    EXPECT_EQ(xyRoute(5, 6, 4), net::EAST);
    EXPECT_EQ(xyRoute(5, 4, 4), net::WEST);
    EXPECT_EQ(xyRoute(5, 1, 4), net::NORTH);
    EXPECT_EQ(xyRoute(5, 9, 4), net::SOUTH);
    // X first: dest (3,0) from (1,1) goes EAST, not NORTH.
    EXPECT_EQ(xyRoute(5, 3, 4), net::EAST);
}

TEST(Routing, HopsAreManhattan)
{
    EXPECT_EQ(xyHops(0, 15, 4), 6);
    EXPECT_EQ(xyHops(5, 5, 4), 0);
    EXPECT_EQ(xyHops(0, 63, 8), 14);
}

TEST(Routing, MeshDimRejectsNonSquares)
{
    EXPECT_THROW(net::meshDim(10), std::invalid_argument);
    EXPECT_EQ(net::meshDim(16), 4);
    EXPECT_EQ(net::meshDim(64), 8);
}

// --------------------------------------------------- delivery correctness

struct DeliveryCheck
{
    uint64_t received;
    uint64_t generated;
    uint64_t latency_sum;
};

DeliveryCheck
runTraffic(NetLevel level, int nrouters, double rate, int cycles,
           const SimConfig &cfg = SimConfig{}, uint64_t seed = 42)
{
    auto top = std::make_unique<MeshTrafficTop>("top", level, nrouters, 4,
                                                rate, seed);
    auto elab = top->elaborate();
    SimulationTool sim(elab, cfg);
    sim.reset();
    sim.cycle(static_cast<uint64_t>(cycles));
    // Drain: stop generating by relying on low in-flight counts.
    int guard = 0;
    while (top->inFlight() > 0 && ++guard < 10000)
        sim.cycle();
    return DeliveryCheck{top->stats().received, top->stats().generated,
                         top->stats().latency_sum};
}

class NetLevels : public ::testing::TestWithParam<NetLevel>
{};

TEST_P(NetLevels, LightTrafficIsFullyDelivered)
{
    DeliveryCheck check = runTraffic(GetParam(), 16, 0.05, 500);
    EXPECT_GT(check.generated, 200u);
    // Everything generated is eventually delivered (minus messages
    // still queued at sources when generation continues; the drain
    // loop only waits for in-network messages, so allow tiny slack).
    EXPECT_GE(check.received + 32, check.generated);
}

TEST_P(NetLevels, SaturatedTrafficDoesNotDeadlock)
{
    auto top = std::make_unique<MeshTrafficTop>("top", GetParam(), 16, 4,
                                                0.9, 7);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint64_t last_received = 0;
    for (int chunk = 0; chunk < 10; ++chunk) {
        sim.cycle(100);
        // Forward progress every chunk: no deadlock under overload.
        EXPECT_GT(top->stats().received, last_received);
        last_received = top->stats().received;
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, NetLevels,
                         ::testing::Values(NetLevel::FL, NetLevel::CL,
                                           NetLevel::RTL),
                         [](const auto &info) {
                             return net::netLevelName(info.param);
                         });

TEST(NetDelivery, MessagesArriveAtCorrectDestination)
{
    // Directed check on the CL mesh: send one message from every
    // source to a fixed destination and count ejections there.
    const int n = 16;
    auto netm = std::make_unique<MeshNetworkCL>(nullptr, "net", n, 16,
                                                16, 4);
    auto elab = netm->elaborate();
    SimulationTool sim(elab);
    sim.reset();
    const auto &layout = netm->msgType();
    for (int t = 0; t < n; ++t)
        netm->out[t].rdy.setValue(uint64_t(1));

    // Inject from router 3 to router 12 and watch only terminal 12.
    Bits msg = layout.pack({12, 3, 0, 0xabcd});
    netm->in_[3].msg.setValue(msg);
    netm->in_[3].val.setValue(uint64_t(1));
    sim.eval();
    int delivered_at = -1;
    for (int cycle = 0; cycle < 50 && delivered_at < 0; ++cycle) {
        bool accepted = netm->in_[3].fire(); // fires during this cycle
        sim.cycle();
        if (accepted)
            netm->in_[3].val.setValue(uint64_t(0)); // send exactly one
        for (int t = 0; t < n; ++t) {
            if (netm->out[t].fire()) {
                EXPECT_EQ(t, 12);
                EXPECT_EQ(layout.get(netm->out[t].msg.value(), "payload")
                              .toUint64(),
                          0xabcdu);
                delivered_at = t;
            }
        }
    }
    EXPECT_EQ(delivered_at, 12);
}

// --------------------------------------------- zero-load latency (paper)

TEST(NetLatency, ClZeroLoadLatencyNearPaperValue)
{
    // Paper Section III-D: 8x8 CL mesh has ~13-cycle zero-load latency.
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::CL, 64,
                                                4, 0.005, 9);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    sim.reset();
    sim.cycle(500);
    top->resetStats();
    sim.cycle(4000);
    double zero_load = top->stats().avgLatency();
    EXPECT_GT(zero_load, 9.0);
    EXPECT_LT(zero_load, 17.0);
}

TEST(NetLatency, LatencyGrowsWithLoad)
{
    // Beyond saturation on the 8x8 mesh, queueing delay dominates.
    // Use the cycle-exact reference model so the sweep stays fast.
    double lat_low = 0, lat_high = 0;
    for (double rate : {0.05, 0.42}) {
        refcpp::RefMeshCL ref(64, 4, rate, 11);
        ref.cycle(1000);
        ref.resetStats();
        ref.cycle(3000);
        (rate < 0.1 ? lat_low : lat_high) = ref.stats().avgLatency();
    }
    EXPECT_GT(lat_high, lat_low * 2.0);
}

// ----------------------------------------- reference C++ cycle-exactness

TEST(RefNet, CycleExactWithClNetwork)
{
    for (int nrouters : {16, 64}) {
        for (double rate : {0.05, 0.25}) {
            auto top = std::make_unique<MeshTrafficTop>(
                "top", NetLevel::CL, nrouters, 4, rate, 123);
            auto elab = top->elaborate();
            SimulationTool sim(elab);
            refcpp::RefMeshCL ref(nrouters, 4, rate, 123);

            sim.cycle(300);
            ref.cycle(300);

            EXPECT_EQ(ref.stats().generated, top->stats().generated)
                << nrouters << "@" << rate;
            EXPECT_EQ(ref.stats().injected, top->stats().injected)
                << nrouters << "@" << rate;
            EXPECT_EQ(ref.stats().received, top->stats().received)
                << nrouters << "@" << rate;
            EXPECT_EQ(ref.stats().latency_sum, top->stats().latency_sum)
                << nrouters << "@" << rate;
            EXPECT_EQ(ref.inFlight(), top->inFlight());
        }
    }
}

// ------------------------------------------------ cross-mode equivalence

TEST(NetModes, RtlMeshStatsIdenticalAcrossBackends)
{
    net::NetStats golden{};
    bool first = true;
    for (SpecMode spec : {SpecMode::None, SpecMode::Bytecode,
                          SpecMode::Cpp}) {
        if (spec == SpecMode::Cpp && !CppJit::compilerAvailable())
            continue;
        auto top = std::make_unique<MeshTrafficTop>(
            "top", NetLevel::RTL, 16, 2, 0.2, 77);
        auto elab = top->elaborate();
        SimConfig cfg;
        cfg.exec = ExecMode::OptInterp;
        cfg.spec = spec;
        SimulationTool sim(elab, cfg);
        sim.cycle(300);
        if (first) {
            golden = top->stats();
            first = false;
        } else {
            EXPECT_EQ(top->stats().received, golden.received);
            EXPECT_EQ(top->stats().latency_sum, golden.latency_sum);
        }
    }
}

TEST(NetModes, RtlMeshInterpMatchesOptInterp)
{
    net::NetStats golden{};
    bool first = true;
    for (ExecMode exec : {ExecMode::OptInterp, ExecMode::Interp}) {
        auto top = std::make_unique<MeshTrafficTop>(
            "top", NetLevel::RTL, 16, 2, 0.2, 78);
        auto elab = top->elaborate();
        SimConfig cfg;
        cfg.exec = exec;
        SimulationTool sim(elab, cfg);
        sim.cycle(120);
        if (first) {
            golden = top->stats();
            first = false;
        } else {
            EXPECT_EQ(top->stats().received, golden.received);
            EXPECT_EQ(top->stats().latency_sum, golden.latency_sum);
        }
    }
}

// --------------------------------------------------------- translatability

TEST(NetTranslate, RtlMeshTranslatesToVerilog)
{
    MeshNetworkRTL netm(nullptr, "net", 4, 16, 16, 2);
    auto elab = netm.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("module Mesh_RouterRTL_0_2_4"), std::string::npos);
    EXPECT_NE(v.find("module RouterRTL_0_2"), std::string::npos);
    EXPECT_NE(v.find("module RouterRTL_3_2"), std::string::npos);
    EXPECT_NE(v.find("module RtlQueue_"), std::string::npos);
    EXPECT_NE(v.find("module RoundRobinArbiter_5"), std::string::npos);
}

TEST(NetTranslate, ClMeshIsNotTranslatable)
{
    MeshNetworkCL netm(nullptr, "net", 4, 16, 16, 2);
    auto elab = netm.elaborate();
    EXPECT_THROW(TranslationTool().translate(*elab), std::logic_error);
}

TEST(NetLint, RtlMeshHasNoDriverErrors)
{
    MeshNetworkRTL netm(nullptr, "net", 16, 16, 16, 2);
    auto elab = netm.elaborate();
    auto issues = LintTool().run(*elab);
    for (const auto &issue : issues) {
        EXPECT_NE(issue.severity, LintSeverity::Error)
            << LintTool::format({issue});
    }
}

TEST(NetSpec, RtlMeshIsFullySpecializable)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                                2, 0.1, 5);
    auto elab = top->elaborate();
    SimConfig cfg;
    cfg.spec = SpecMode::Bytecode;
    SimulationTool sim(elab, cfg);
    // Every block except the traffic lambda is specialized.
    EXPECT_EQ(sim.specStats().numSpecialized,
              sim.specStats().numBlocks - 1);
}

} // namespace
} // namespace cmtl
