/**
 * RouterCLSpec — the CL mesh in the specializable IR subset — must be
 * cycle-exact with the lambda-based RouterCL, fully specializable,
 * translatable, and identical under every execution backend.
 */

#include <gtest/gtest.h>

#include "core/sim.h"
#include "core/translate.h"
#include "net/traffic.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

class ClSpecEquiv
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(ClSpecEquiv, CycleExactWithLambdaClRouter)
{
    auto [nrouters, rate] = GetParam();
    auto a = std::make_unique<MeshTrafficTop>("a", NetLevel::CL,
                                              nrouters, 4, rate, 9);
    auto b = std::make_unique<MeshTrafficTop>("b", NetLevel::CLSpec,
                                              nrouters, 4, rate, 9);
    auto ea = a->elaborate();
    auto eb = b->elaborate();
    SimulationTool sa(ea), sb(eb);
    sa.cycle(400);
    sb.cycle(400);
    EXPECT_EQ(a->stats().generated, b->stats().generated);
    EXPECT_EQ(a->stats().injected, b->stats().injected);
    EXPECT_EQ(a->stats().received, b->stats().received);
    EXPECT_EQ(a->stats().latency_sum, b->stats().latency_sum);
    EXPECT_EQ(a->stats().latency_max, b->stats().latency_max);
    EXPECT_EQ(a->inFlight(), b->inFlight());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ClSpecEquiv,
    ::testing::Combine(::testing::Values(16, 64),
                       ::testing::Values(0.05, 0.3, 0.8)),
    [](const auto &info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_r" +
               std::to_string(static_cast<int>(
                   std::get<1>(info.param) * 100));
    });

TEST(ClSpec, FullySpecializable)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::CLSpec,
                                                16, 4, 0.2, 5);
    auto elab = top->elaborate();
    SimConfig cfg;
    cfg.spec = SpecMode::Bytecode;
    SimulationTool sim(elab, cfg);
    EXPECT_EQ(sim.specStats().numSpecialized,
              sim.specStats().numBlocks - 1); // all but the harness
}

TEST(ClSpec, TranslatesToVerilog)
{
    net::MeshNetworkCLSpec netm(nullptr, "net", 4, 16, 16, 4);
    auto elab = netm.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("module RouterCLSpec_0_4"), std::string::npos);
    EXPECT_NE(v.find("reg  [23:0] q0 [0:3];"), std::string::npos);
}

TEST(ClSpec, IdenticalStatsAcrossAllBackends)
{
    net::NetStats golden{};
    bool first = true;
    for (const ExecMode exec : {ExecMode::OptInterp, ExecMode::Interp}) {
        for (const SpecMode spec :
             {SpecMode::None, SpecMode::Bytecode, SpecMode::Cpp}) {
            if (spec == SpecMode::Cpp && !CppJit::compilerAvailable())
                continue;
            auto top = std::make_unique<MeshTrafficTop>(
                "top", NetLevel::CLSpec, 16, 4, 0.25, 77);
            auto elab = top->elaborate();
            SimConfig cfg;
            cfg.exec = exec;
            cfg.spec = spec;
            SimulationTool sim(elab, cfg);
            sim.cycle(exec == ExecMode::Interp ? 150 : 400);
            if (first) {
                golden = top->stats();
                first = false;
            } else if (exec == ExecMode::Interp) {
                // Shorter run under the slow boxed interpreter: only
                // check internal agreement through a fresh golden run.
                auto top2 = std::make_unique<MeshTrafficTop>(
                    "top2", NetLevel::CLSpec, 16, 4, 0.25, 77);
                auto elab2 = top2->elaborate();
                SimulationTool sim2(elab2);
                sim2.cycle(150);
                EXPECT_EQ(top->stats().received,
                          top2->stats().received);
                EXPECT_EQ(top->stats().latency_sum,
                          top2->stats().latency_sum);
            } else {
                EXPECT_EQ(top->stats().received, golden.received);
                EXPECT_EQ(top->stats().latency_sum, golden.latency_sum);
            }
        }
    }
}

} // namespace
} // namespace cmtl
