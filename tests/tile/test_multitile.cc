/**
 * Multi-tile system integration: heterogeneous tiles sharing a memory
 * node over the on-chip network (paper Figure 5a).
 */

#include <gtest/gtest.h>

#include "core/sim.h"
#include "tile/multitile.h"

namespace cmtl {
namespace tile {
namespace {

void
runSystem(MultiTileSystem &sys, SimulationTool &sim,
          uint64_t max_cycles = 3000000)
{
    sim.reset();
    uint64_t cycles = 0;
    while (!sys.allHalted() && cycles < max_cycles) {
        sim.cycle(256);
        cycles += 256;
    }
    ASSERT_TRUE(sys.allHalted()) << "deadlock after " << cycles;
    sim.cycle(500); // drain in-flight stores through the network
}

void
checkOutputs(MultiTileSystem &sys, const Workload &w)
{
    auto expect = expectedMvmult(w);
    for (int t = 0; t < sys.numTiles(); ++t) {
        uint32_t base = w.out_addr +
                        static_cast<uint32_t>(t) * w.n * 4;
        for (int r = 0; r < w.n; ++r) {
            ASSERT_EQ(sys.memNode().readWord(
                          base + static_cast<uint32_t>(r) * 4),
                      expect[r])
                << "tile " << t << " row " << r;
        }
    }
}

TEST(MultiTile, HomogeneousClTilesOverFlNetwork)
{
    Workload w = makeMvmultMultiTile(4, /*use_accel=*/false);
    MultiTileSystem sys("sys",
                        {{Level::CL, Level::CL, Level::CL},
                         {Level::CL, Level::CL, Level::CL},
                         {Level::CL, Level::CL, Level::CL}});
    sys.loadProgram(w.image);
    loadMvmultData(sys.memNode(), w);
    auto elab = sys.elaborate();
    SimulationTool sim(elab);
    runSystem(sys, sim);
    checkOutputs(sys, w);
    EXPECT_GT(sys.memNode().numRequests(), 100u);
}

TEST(MultiTile, HeterogeneousTilesProduceIdenticalResults)
{
    // The paper's headline composition: tiles at different abstraction
    // levels in one simulation.
    Workload w = makeMvmultMultiTile(4, /*use_accel=*/true);
    MultiTileSystem sys("sys",
                        {{Level::FL, Level::FL, Level::FL},
                         {Level::CL, Level::CL, Level::CL},
                         {Level::RTL, Level::RTL, Level::RTL}});
    sys.loadProgram(w.image);
    loadMvmultData(sys.memNode(), w);
    auto elab = sys.elaborate();
    SimulationTool sim(elab);
    runSystem(sys, sim);
    checkOutputs(sys, w);
}

TEST(MultiTile, ClNetworkCarriesTheSameTraffic)
{
    Workload w = makeMvmultMultiTile(4, /*use_accel=*/true);
    MultiTileSystem sys("sys",
                        {{Level::CL, Level::CL, Level::CL},
                         {Level::CL, Level::CL, Level::RTL}},
                        /*cl_network=*/true);
    sys.loadProgram(w.image);
    loadMvmultData(sys.memNode(), w);
    auto elab = sys.elaborate();
    SimulationTool sim(elab);
    runSystem(sys, sim);
    checkOutputs(sys, w);
}

TEST(MultiTile, WhoAmIRegisterDistinguishesTiles)
{
    // Each tile stores its id to a distinct location derived from it.
    Assembler a;
    a.li(1, kWhoAmIAddr);
    a.lw(1, 1, 0); // r1 = tile id
    a.li(2, 0x3000);
    a.addi(3, 0, 4);
    a.mul(3, 1, 3);
    a.add(2, 2, 3);
    a.sw(1, 2, 0); // mem[0x3000 + 4*id] = id
    a.halt();
    auto program = a.finish();

    MultiTileSystem sys("sys",
                        {{Level::CL, Level::FL, Level::FL},
                         {Level::CL, Level::FL, Level::FL},
                         {Level::CL, Level::FL, Level::FL}});
    sys.loadProgram(program);
    auto elab = sys.elaborate();
    SimulationTool sim(elab);
    runSystem(sys, sim, 100000);
    for (uint32_t t = 0; t < 3; ++t)
        EXPECT_EQ(sys.memNode().readWord(0x3000 + 4 * t), t);
}

TEST(MultiTile, SingleTileSystemWorks)
{
    Workload w = makeMvmultMultiTile(4, false);
    MultiTileSystem sys("sys", {{Level::CL, Level::CL, Level::CL}});
    sys.loadProgram(w.image);
    loadMvmultData(sys.memNode(), w);
    auto elab = sys.elaborate();
    SimulationTool sim(elab);
    runSystem(sys, sim);
    checkOutputs(sys, w);
}

} // namespace
} // namespace tile
} // namespace cmtl
