/**
 * ProcRTL5-specific properties: it is a genuine pipeline (higher IPC
 * than the multicycle ProcRTL), translates to Verilog, and handles
 * the classic pipeline hazards the random suites may not isolate.
 */

#include <gtest/gtest.h>

#include "core/sim.h"
#include "core/translate.h"
#include "tile/programs.h"
#include "tile/tile.h"

namespace cmtl {
namespace tile {
namespace {

constexpr uint32_t kDump = 0x1800;

/** Cycles for a program on a tile with the chosen RTL processor. */
template <typename ProcT>
std::pair<uint64_t, uint32_t>
runOnProc(const std::vector<uint32_t> &program)
{
    // Hand-assemble a tile around the specific processor type.
    class MiniTile : public Model
    {
      public:
        ProcT proc;
        CacheCL icache, dcache;
        DotProductCL accel;
        MemArbiter arb;
        stdlib::TestMemory mem;
        MiniTile()
            : Model(nullptr, "mini"), proc(this, "proc"),
              icache(this, "icache"), dcache(this, "dcache"),
              accel(this, "accel"), arb(this, "arb"),
              mem(this, "mem", 2, 1)
        {
            connectReqResp(*this, proc.imem_ifc, icache.proc_ifc);
            connectReqResp(*this, icache.mem_ifc, mem.ifc[0]);
            connectReqResp(*this, proc.dmem_ifc, arb.port(0));
            connectReqResp(*this, accel.mem_ifc, arb.port(1));
            connectReqResp(*this, arb.memPort(), dcache.proc_ifc);
            connectReqResp(*this, dcache.mem_ifc, mem.ifc[1]);
            connectReqResp(*this, proc.acc_ifc, accel.cpu_ifc);
        }
    };
    MiniTile t;
    for (size_t i = 0; i < program.size(); ++i)
        t.mem.writeWord(static_cast<uint64_t>(i) * 4, program[i]);
    auto elab = t.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint64_t cycles = 0;
    while (!t.proc.halted.u64() && cycles < 500000) {
        sim.cycle();
        ++cycles;
    }
    EXPECT_TRUE(t.proc.halted.u64());
    sim.cycle(100);
    return {cycles, t.mem.readWord(kDump)};
}

TEST(ProcRtl5, PipelinesBetterThanMulticycle)
{
    // A long dependency-light arithmetic stretch: the pipeline should
    // clearly beat the multicycle implementation.
    Assembler a;
    a.li(11, kDump);
    a.addi(1, 0, 0);
    for (int i = 0; i < 60; ++i)
        a.addi(1, 1, 1);
    a.sw(1, 11, 0);
    a.halt();
    auto program = a.finish();

    auto [c5, r5] = runOnProc<ProcRTL5>(program);
    auto [cm, rm] = runOnProc<ProcRTL>(program);
    EXPECT_EQ(r5, 60u);
    EXPECT_EQ(rm, 60u);
    EXPECT_LT(c5 * 2, cm) << "pipeline IPC should be >2x multicycle";
}

TEST(ProcRtl5, BackToBackDependenciesForwardCorrectly)
{
    // Chains where every instruction depends on the previous one, in
    // every forwarding distance.
    Assembler a;
    a.li(11, kDump);
    a.addi(1, 0, 5);
    a.addi(2, 1, 1); // X->D forward
    a.addi(3, 2, 1);
    a.nop();
    a.addi(4, 3, 1); // M->D forward
    a.nop();
    a.nop();
    a.addi(5, 4, 1); // W->D / regfile
    a.add(6, 5, 5);
    a.sw(6, 11, 0);
    a.halt();
    auto [cycles, result] = runOnProc<ProcRTL5>(a.finish());
    (void)cycles;
    EXPECT_EQ(result, 18u);
}

TEST(ProcRtl5, LoadUseInterlock)
{
    Assembler a;
    a.li(11, kDump);
    a.li(1, 0x1000);
    a.lw(2, 1, 0);     // load 123
    a.addi(3, 2, 1);   // immediate use of load result
    a.lw(4, 1, 4);     // load 7
    a.mul(5, 3, 4);    // use both
    a.sw(5, 11, 0);
    a.halt();
    auto program = a.finish();

    class Mini
    {};
    // Preload the data words through the standard tile path instead:
    auto t = std::make_unique<Tile>("tile", Level::RTL, Level::CL,
                                    Level::CL);
    t->loadProgram(program);
    t->mem().writeWord(0x1000, 123);
    t->mem().writeWord(0x1004, 7);
    auto elab = t->elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint64_t guard = 0;
    while (!t->halted() && ++guard < 50000)
        sim.cycle();
    ASSERT_TRUE(t->halted());
    sim.cycle(100);
    EXPECT_EQ(t->mem().readWord(kDump), 124u * 7);
}

TEST(ProcRtl5, TightLoopBranchFlushes)
{
    // A 2-instruction loop maximizes wrong-path fetches.
    Assembler a;
    a.li(11, kDump);
    a.addi(1, 0, 50);
    a.addi(2, 0, 0);
    a.label("loop");
    a.addi(2, 2, 3);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.sw(2, 11, 0);
    a.halt();
    auto [cycles, result] = runOnProc<ProcRTL5>(a.finish());
    EXPECT_EQ(result, 150u);
    // Sanity: dozens of iterations complete in bounded time.
    EXPECT_LT(cycles, 4000u);
}

TEST(ProcRtl5, TranslatesToVerilog)
{
    ProcRTL5 proc(nullptr, "proc");
    auto elab = proc.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("module ProcRTL5"), std::string::npos);
    EXPECT_NE(v.find("reg  [31:0] regs [0:15];"), std::string::npos);
    EXPECT_NE(v.find("reg  [31:0] fb_inst [0:3];"), std::string::npos);
}

TEST(ProcRtl5, FullySpecializable)
{
    ProcRTL5 proc(nullptr, "proc");
    auto elab = proc.elaborate();
    SimConfig cfg;
    cfg.spec = SpecMode::Bytecode;
    SimulationTool sim(elab, cfg);
    EXPECT_EQ(sim.specStats().numSpecialized,
              sim.specStats().numBlocks);
}

} // namespace
} // namespace tile
} // namespace cmtl
