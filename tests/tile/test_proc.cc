/**
 * Randomized instruction-level validation: every processor level must
 * match the golden ISS architecturally on generated programs.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/sim.h"
#include "tile/programs.h"
#include "tile/tile.h"

namespace cmtl {
namespace tile {
namespace {

constexpr uint32_t kDataBase = 0x1000;
constexpr uint32_t kDumpBase = 0x1800;
constexpr int kDataWords = 64;

/**
 * A random but guaranteed-halting program: straight-line arithmetic
 * over r1..r9 mixed with loads from a preloaded data region and
 * stores into a scratch region, ending with a register dump.
 */
std::vector<uint32_t>
randomProgram(uint64_t seed, int length)
{
    std::mt19937_64 rng(seed);
    Assembler a;
    a.li(10, kDataBase);
    a.li(11, kDumpBase);
    for (int i = 0; i < length; ++i) {
        int rd = 1 + static_cast<int>(rng() % 9);
        int rs1 = 1 + static_cast<int>(rng() % 9);
        int rs2 = 1 + static_cast<int>(rng() % 9);
        switch (rng() % 10) {
          case 0: a.add(rd, rs1, rs2); break;
          case 1: a.sub(rd, rs1, rs2); break;
          case 2: a.mul(rd, rs1, rs2); break;
          case 3: a.xor_(rd, rs1, rs2); break;
          case 4: a.and_(rd, rs1, rs2); break;
          case 5: a.or_(rd, rs1, rs2); break;
          case 6: a.slt(rd, rs1, rs2); break;
          case 7:
            a.addi(rd, rs1,
                   static_cast<int32_t>(rng() % 2000) - 1000);
            break;
          case 8:
            a.lw(rd, 10, static_cast<int32_t>(rng() % kDataWords) * 4);
            break;
          case 9:
            a.sw(rd, 11,
                 static_cast<int32_t>(rng() % kDataWords) * 4);
            break;
        }
    }
    // Dump architectural state for comparison.
    for (int r = 1; r <= 9; ++r)
        a.sw(r, 11, (kDataWords + r) * 4);
    a.halt();
    return a.finish();
}

class ProcRandom
    : public ::testing::TestWithParam<std::tuple<Level, uint64_t>>
{};

TEST_P(ProcRandom, MatchesGoldenIss)
{
    auto [level, seed] = GetParam();
    auto program = randomProgram(seed, 60);

    GoldenIss iss(program);
    for (int i = 0; i < kDataWords; ++i)
        iss.writeMem(kDataBase + static_cast<uint32_t>(i) * 4,
                     static_cast<uint32_t>(seed * 31 + i * 17));
    iss.run(100000);
    ASSERT_TRUE(iss.halted());

    auto t = std::make_unique<Tile>("tile", level, Level::CL, Level::CL);
    t->loadProgram(program);
    for (int i = 0; i < kDataWords; ++i)
        t->mem().writeWord(kDataBase + static_cast<uint32_t>(i) * 4,
                           static_cast<uint32_t>(seed * 31 + i * 17));
    auto elab = t->elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint64_t cycles = 0;
    while (!t->halted() && cycles < 500000) {
        sim.cycle(64);
        cycles += 64;
    }
    ASSERT_TRUE(t->halted()) << "seed " << seed;
    sim.cycle(100); // drain stores

    for (int r = 1; r <= 9; ++r) {
        EXPECT_EQ(t->mem().readWord(kDumpBase + (kDataWords + r) * 4),
                  iss.readMem(kDumpBase + (kDataWords + r) * 4))
            << "r" << r << " seed " << seed;
    }
    for (int i = 0; i < kDataWords; ++i) {
        EXPECT_EQ(t->mem().readWord(kDumpBase +
                                    static_cast<uint32_t>(i) * 4),
                  iss.readMem(kDumpBase + static_cast<uint32_t>(i) * 4))
            << "word " << i << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProcRandom,
    ::testing::Combine(::testing::Values(Level::FL, Level::CL,
                                         Level::RTL),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto &info) {
        return std::string(levelName(std::get<0>(info.param))) + "_s" +
               std::to_string(std::get<1>(info.param));
    });

TEST(ProcBranches, LoopsAndBranchesMatchIss)
{
    // Nested loops with all three branch types.
    Assembler a;
    a.li(11, kDumpBase);
    a.addi(1, 0, 0);  // sum
    a.addi(2, 0, 5);  // outer counter
    a.label("outer");
    a.addi(3, 0, -3); // inner counter (negative -> blt path)
    a.label("inner");
    a.add(1, 1, 2);
    a.addi(3, 3, 1);
    a.blt(3, 0, "inner");
    a.addi(2, 2, -1);
    a.bne(2, 0, "outer");
    a.beq(1, 1, "skip"); // always taken
    a.addi(1, 0, 9999);  // never executed
    a.label("skip");
    a.sw(1, 11, 0);
    a.halt();
    auto program = a.finish();

    GoldenIss iss(program);
    iss.run();
    ASSERT_TRUE(iss.halted());

    for (Level level : {Level::FL, Level::CL, Level::RTL}) {
        auto t = std::make_unique<Tile>("tile", level, Level::FL,
                                        Level::FL);
        t->loadProgram(program);
        auto elab = t->elaborate();
        SimulationTool sim(elab);
        sim.reset();
        uint64_t cycles = 0;
        while (!t->halted() && cycles < 500000) {
            sim.cycle(64);
            cycles += 64;
        }
        ASSERT_TRUE(t->halted()) << levelName(level);
        sim.cycle(50);
        EXPECT_EQ(t->mem().readWord(kDumpBase), iss.readMem(kDumpBase))
            << levelName(level);
        // 3 setup + 5 outer iterations x (1 + 9 inner + 2) + beq +
        // sw + halt.
        EXPECT_EQ(t->proc().numInsts(), 3u + 5 * (1 + 9 + 2) + 3)
            << levelName(level);
    }
}

TEST(ProcCalls, FunctionCallAndReturnMatchIss)
{
    // A leaf function (triple its argument) called twice via
    // jal/jr with r15 as the link register.
    Assembler a;
    a.li(11, kDumpBase);
    a.addi(1, 0, 7);
    a.jal(15, "triple");
    a.add(2, 1, 0); // save 21
    a.addi(1, 0, 10);
    a.jal(15, "triple");
    a.add(3, 1, 0); // save 30
    a.sw(2, 11, 0);
    a.sw(3, 11, 4);
    a.halt();
    a.label("triple");
    a.add(4, 1, 1);
    a.add(1, 4, 1);
    a.jr(15);
    auto program = a.finish();

    GoldenIss iss(program);
    iss.run(10000);
    ASSERT_TRUE(iss.halted());
    ASSERT_EQ(iss.readMem(kDumpBase), 21u);
    ASSERT_EQ(iss.readMem(kDumpBase + 4), 30u);

    for (Level level : {Level::FL, Level::CL, Level::RTL}) {
        auto t = std::make_unique<Tile>("tile", level, Level::CL,
                                        Level::FL);
        t->loadProgram(program);
        auto elab = t->elaborate();
        SimulationTool sim(elab);
        sim.reset();
        uint64_t guard = 0;
        while (!t->halted() && ++guard < 20000)
            sim.cycle(16);
        ASSERT_TRUE(t->halted()) << levelName(level);
        sim.cycle(50);
        EXPECT_EQ(t->mem().readWord(kDumpBase), 21u)
            << levelName(level);
        EXPECT_EQ(t->mem().readWord(kDumpBase + 4), 30u)
            << levelName(level);
    }
}

TEST(ProcCounters, InstructionCountsMatchAcrossLevels)
{
    // All levels commit the same number of instructions for the same
    // program (timing differs; architecture does not).
    Workload w = makeMvmultScalar(4, 2);
    uint64_t counts[3];
    int i = 0;
    for (Level level : {Level::FL, Level::CL, Level::RTL}) {
        auto t = std::make_unique<Tile>("tile", level, Level::CL,
                                        Level::CL);
        t->loadProgram(w.image);
        loadMvmultData(t->mem(), w);
        auto elab = t->elaborate();
        SimulationTool sim(elab);
        sim.reset();
        uint64_t guard = 0;
        while (!t->halted() && ++guard < 20000)
            sim.cycle(16);
        counts[i++] = t->proc().numInsts();
    }
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(counts[1], counts[2]);
}

} // namespace
} // namespace tile
} // namespace cmtl
