/**
 * Cache verification: all three implementation levels must be
 * functionally equivalent to a flat memory under arbitrary request
 * streams, and the real caches must actually cache.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/sim.h"
#include "stdlib/test_memory.h"
#include "tile/cache.h"
#include "tile/tile.h"

namespace cmtl {
namespace tile {
namespace {

/** Cache under test, with a memory behind it and a direct driver. */
class CacheHarness : public Model
{
  public:
    std::unique_ptr<CacheBase> cache;
    stdlib::TestMemory mem;
    ParentReqRespBundle port;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> driver;

    explicit CacheHarness(Level level)
        : Model(nullptr, "h"), mem(this, "mem", 1, 2),
          port(this, "port", memIfcTypes())
    {
        switch (level) {
          case Level::FL:
            cache = std::make_unique<CacheFL>(this, "cache");
            break;
          case Level::CL:
            cache = std::make_unique<CacheCL>(this, "cache", 16);
            break;
          case Level::RTL:
            cache = std::make_unique<CacheRTL>(this, "cache", 16);
            break;
        }
        connectReqResp(*this, port, cache->proc_ifc);
        connectReqResp(*this, cache->mem_ifc, mem.ifc[0]);
        driver = std::make_unique<stdlib::ParentReqRespQueueAdapter>(
            port, 4);
        tickFl("drive", [this] { driver->xtick(); });
    }

    Bits
    transact(SimulationTool &sim, MemReqType type, uint32_t addr,
             uint32_t data = 0)
    {
        driver->pushReq(
            makeMemReq(driver->types.req, type, addr, data));
        int guard = 0;
        while (driver->resp_q.empty() && ++guard < 10000)
            sim.cycle();
        EXPECT_LT(guard, 10000) << "cache never responded";
        return driver->getResp();
    }
};

class CacheLevels : public ::testing::TestWithParam<Level>
{};

TEST_P(CacheLevels, RandomStreamMatchesFlatMemory)
{
    CacheHarness h(GetParam());
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();

    std::mt19937_64 rng(42);
    std::map<uint32_t, uint32_t> model; // flat reference memory
    const auto &resp_t = h.driver->types.resp;
    for (int i = 0; i < 300; ++i) {
        // Small address pool provokes hits, conflicts and evictions.
        uint32_t addr = static_cast<uint32_t>(rng() % 64) * 4 +
                        (rng() % 2 ? 0x400 : 0);
        if (rng() % 3 == 0) {
            uint32_t value = static_cast<uint32_t>(rng());
            h.transact(sim, MemReqType::Write, addr, value);
            model[addr] = value;
        } else {
            Bits resp = h.transact(sim, MemReqType::Read, addr);
            uint32_t expect =
                model.count(addr) ? model[addr] : 0;
            ASSERT_EQ(resp_t.get(resp, "data").toUint64(), expect)
                << "addr 0x" << std::hex << addr << " op " << std::dec
                << i;
        }
    }
}

TEST_P(CacheLevels, WritesReachBackingMemory)
{
    // Write-through: the store is visible in the backing memory.
    CacheHarness h(GetParam());
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    h.transact(sim, MemReqType::Write, 0x123 & ~3u, 0xabcd1234);
    sim.cycle(20);
    EXPECT_EQ(h.mem.readWord(0x123 & ~3u), 0xabcd1234u);
}

INSTANTIATE_TEST_SUITE_P(Levels, CacheLevels,
                         ::testing::Values(Level::FL, Level::CL,
                                           Level::RTL),
                         [](const auto &info) {
                             return levelName(info.param);
                         });

TEST(CacheBehaviour, RepeatAccessesHitAndAreFaster)
{
    for (Level level : {Level::CL, Level::RTL}) {
        CacheHarness h(level);
        auto elab = h.elaborate();
        SimulationTool sim(elab);
        sim.reset();
        // First touch misses; re-reads hit.
        h.transact(sim, MemReqType::Read, 0x100);
        uint64_t start = sim.numCycles();
        for (int i = 0; i < 8; ++i)
            h.transact(sim, MemReqType::Read, 0x100);
        uint64_t hit_time = sim.numCycles() - start;

        // Distinct lines each time: all misses.
        start = sim.numCycles();
        for (int i = 0; i < 8; ++i)
            h.transact(sim, MemReqType::Read,
                       0x1000 + static_cast<uint32_t>(i) * 64);
        uint64_t miss_time = sim.numCycles() - start;
        EXPECT_LT(hit_time * 3, miss_time * 2)
            << levelName(level) << " hits should be faster";
        EXPECT_EQ(h.cache->numMisses(), 9u) << levelName(level);
        EXPECT_EQ(h.cache->numAccesses(), 17u) << levelName(level);
    }
}

TEST(CacheBehaviour, SpatialLocalityWithinALine)
{
    // Reading the 4 words of one line costs one miss.
    for (Level level : {Level::CL, Level::RTL}) {
        CacheHarness h(level);
        auto elab = h.elaborate();
        SimulationTool sim(elab);
        sim.reset();
        for (uint32_t w = 0; w < 4; ++w)
            h.transact(sim, MemReqType::Read, 0x200 + w * 4);
        EXPECT_EQ(h.cache->numMisses(), 1u) << levelName(level);
    }
}

TEST(CacheBehaviour, ConflictingLinesEvict)
{
    // 16-line direct-mapped cache, 16B lines: addresses 16*16=256
    // bytes apart collide.
    for (Level level : {Level::CL, Level::RTL}) {
        CacheHarness h(level);
        auto elab = h.elaborate();
        SimulationTool sim(elab);
        sim.reset();
        h.transact(sim, MemReqType::Read, 0x100);
        h.transact(sim, MemReqType::Read, 0x100 + 256); // evicts
        h.transact(sim, MemReqType::Read, 0x100);       // misses again
        EXPECT_EQ(h.cache->numMisses(), 3u) << levelName(level);
    }
}

} // namespace
} // namespace tile
} // namespace cmtl
