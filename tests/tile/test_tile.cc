#include <gtest/gtest.h>

#include "core/sim.h"
#include "core/translate.h"
#include "tile/programs.h"
#include "tile/tile.h"

namespace cmtl {
namespace tile {
namespace {

/** Run a workload to completion; returns cycles taken. */
uint64_t
runWorkload(Tile &t, SimulationTool &sim, uint64_t max_cycles = 2000000)
{
    sim.reset();
    uint64_t cycles = 0;
    while (!t.halted() && cycles < max_cycles) {
        sim.cycle(100);
        cycles += 100;
    }
    EXPECT_TRUE(t.halted()) << t.configName() << " did not halt";
    // Drain in-flight stores (the CL processor's stores are
    // fire-and-forget, so HALT can commit with writes still queued).
    sim.cycle(100);
    return cycles;
}

void
checkMvmultResult(Tile &t, const Workload &w)
{
    auto expect = expectedMvmult(w);
    for (int r = 0; r < w.n; ++r) {
        ASSERT_EQ(t.mem().readWord(w.out_addr +
                                   static_cast<uint32_t>(r) * 4),
                  expect[r])
            << t.configName() << " row " << r;
    }
}

// Every homogeneous configuration plus a representative mixed set.
std::vector<std::array<Level, 3>>
tileConfigs()
{
    return {
        {Level::FL, Level::FL, Level::FL},
        {Level::CL, Level::CL, Level::CL},
        {Level::RTL, Level::RTL, Level::RTL},
        {Level::FL, Level::CL, Level::RTL},
        {Level::RTL, Level::FL, Level::CL},
        {Level::CL, Level::RTL, Level::FL},
        {Level::CL, Level::CL, Level::RTL},
        {Level::RTL, Level::RTL, Level::CL},
        {Level::FL, Level::RTL, Level::RTL},
    };
}

class TileConfigs
    : public ::testing::TestWithParam<std::array<Level, 3>>
{};

TEST_P(TileConfigs, ScalarMvmultComputesCorrectResult)
{
    auto [p, c, a] = GetParam();
    Workload w = makeMvmultScalar(4, 4);
    auto t = std::make_unique<Tile>("tile", p, c, a);
    t->loadProgram(w.image);
    loadMvmultData(t->mem(), w);
    auto elab = t->elaborate();
    SimulationTool sim(elab);
    runWorkload(*t, sim);
    checkMvmultResult(*t, w);
    EXPECT_GT(t->proc().numInsts(), 0u);
}

TEST_P(TileConfigs, AccelMvmultComputesCorrectResult)
{
    auto [p, c, a] = GetParam();
    Workload w = makeMvmultAccel(4);
    auto t = std::make_unique<Tile>("tile", p, c, a);
    t->loadProgram(w.image);
    loadMvmultData(t->mem(), w);
    auto elab = t->elaborate();
    SimulationTool sim(elab);
    runWorkload(*t, sim);
    checkMvmultResult(*t, w);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TileConfigs, ::testing::ValuesIn(tileConfigs()),
    [](const ::testing::TestParamInfo<std::array<Level, 3>> &info) {
        return std::string(levelName(info.param[0])) +
               levelName(info.param[1]) + levelName(info.param[2]);
    });

TEST(TileSpec, RtlTileRunsUnderAllBackends)
{
    Workload w = makeMvmultAccel(4);
    auto expect = expectedMvmult(w);
    for (SpecMode spec : {SpecMode::None, SpecMode::Bytecode,
                          SpecMode::Cpp}) {
        if (spec == SpecMode::Cpp && !CppJit::compilerAvailable())
            continue;
        auto t = std::make_unique<Tile>("tile", Level::RTL, Level::RTL,
                                        Level::RTL);
        t->loadProgram(w.image);
        loadMvmultData(t->mem(), w);
        auto elab = t->elaborate();
        SimConfig cfg;
        cfg.spec = spec;
        SimulationTool sim(elab, cfg);
        runWorkload(*t, sim);
        checkMvmultResult(*t, w);
    }
}

TEST(TileSpec, RtlTileRunsUnderBoxedInterp)
{
    Workload w = makeMvmultScalar(4, 4);
    auto t = std::make_unique<Tile>("tile", Level::RTL, Level::RTL,
                                    Level::RTL);
    t->loadProgram(w.image);
    loadMvmultData(t->mem(), w);
    auto elab = t->elaborate();
    SimConfig cfg;
    cfg.exec = ExecMode::Interp;
    SimulationTool sim(elab, cfg);
    runWorkload(*t, sim);
    checkMvmultResult(*t, w);
}

TEST(TileTiming, CyclesAreDeterministic)
{
    // Two identical runs take identical cycle counts.
    uint64_t halted_at[2];
    for (int run = 0; run < 2; ++run) {
        Workload w = makeMvmultScalar(4, 2);
        auto t = std::make_unique<Tile>("tile", Level::CL, Level::CL,
                                        Level::CL);
        t->loadProgram(w.image);
        loadMvmultData(t->mem(), w);
        auto elab = t->elaborate();
        SimulationTool sim(elab);
        sim.reset();
        uint64_t cycles = 0;
        while (!t->halted() && cycles < 1000000) {
            sim.cycle();
            ++cycles;
        }
        halted_at[run] = cycles;
    }
    EXPECT_EQ(halted_at[0], halted_at[1]);
}

TEST(TileTiming, AcceleratorBeatsScalarOnClTile)
{
    // Paper Section III-C: the accelerated tile outruns the scalar
    // loop-unrolled software version.
    uint64_t cycles_scalar = 0, cycles_accel = 0;
    for (bool accel : {false, true}) {
        Workload w =
            accel ? makeMvmultAccel(16) : makeMvmultScalar(16, 4);
        auto t = std::make_unique<Tile>("tile", Level::CL, Level::CL,
                                        Level::CL);
        t->loadProgram(w.image);
        loadMvmultData(t->mem(), w);
        auto elab = t->elaborate();
        SimulationTool sim(elab);
        sim.reset();
        uint64_t cycles = 0;
        while (!t->halted() && cycles < 2000000) {
            sim.cycle();
            ++cycles;
        }
        sim.cycle(100); // drain in-flight stores
        checkMvmultResult(*t, w);
        (accel ? cycles_accel : cycles_scalar) = cycles;
    }
    EXPECT_LT(cycles_accel, cycles_scalar);
}

TEST(TileTiming, MoreDetailIsSlowerToSimulateButFunctionallyEqual)
{
    // All-FL and all-RTL tiles produce identical architectural
    // results for the same workload.
    Workload w = makeMvmultScalar(4, 1);
    std::vector<uint32_t> results[2];
    int idx = 0;
    for (Level level : {Level::FL, Level::RTL}) {
        auto t = std::make_unique<Tile>("tile", level, level, level);
        t->loadProgram(w.image);
        loadMvmultData(t->mem(), w);
        auto elab = t->elaborate();
        SimulationTool sim(elab);
        runWorkload(*t, sim);
        for (int r = 0; r < w.n; ++r)
            results[idx].push_back(t->mem().readWord(
                w.out_addr + static_cast<uint32_t>(r) * 4));
        ++idx;
    }
    EXPECT_EQ(results[0], results[1]);
}

TEST(TileTranslate, RtlComponentsTranslate)
{
    // Processor, cache and accelerator RTL models all translate.
    {
        ProcRTL proc(nullptr, "proc");
        auto elab = proc.elaborate();
        std::string v = TranslationTool().translate(*elab);
        EXPECT_NE(v.find("module ProcRTL"), std::string::npos);
        EXPECT_NE(v.find("reg  [31:0] regs [0:15];"),
                  std::string::npos);
    }
    {
        CacheRTL cache(nullptr, "cache", 64);
        auto elab = cache.elaborate();
        std::string v = TranslationTool().translate(*elab);
        EXPECT_NE(v.find("module CacheRTL_64"), std::string::npos);
    }
    {
        DotProductRTL accel(nullptr, "accel");
        auto elab = accel.elaborate();
        std::string v = TranslationTool().translate(*elab);
        EXPECT_NE(v.find("module DotProductRTL"), std::string::npos);
        EXPECT_NE(v.find("module IntPipelinedMultiplier_32_4"),
                  std::string::npos);
    }
}

TEST(TileCaches, CachesReduceMemoryTraffic)
{
    // The CL cache's icache hit rate on a loop should be high: far
    // fewer memory requests than instruction fetches.
    Workload w = makeMvmultScalar(8, 4);
    auto t = std::make_unique<Tile>("tile", Level::CL, Level::CL,
                                    Level::CL);
    t->loadProgram(w.image);
    loadMvmultData(t->mem(), w);
    auto elab = t->elaborate();
    SimulationTool sim(elab);
    runWorkload(*t, sim);
    EXPECT_GT(t->icache().numAccesses(), 10 * t->icache().numMisses())
        << "icache hit rate too low";
}

} // namespace
} // namespace tile
} // namespace cmtl
