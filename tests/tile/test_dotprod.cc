/**
 * Standalone accelerator verification: each implementation level is
 * driven directly over its cpu_ifc with a test memory behind it —
 * the paper's incremental verification flow (FL golden behaviour,
 * then CL and RTL against the same test bench).
 */

#include <gtest/gtest.h>

#include "core/sim.h"
#include "stdlib/test_memory.h"
#include "tile/dotprod.h"
#include "tile/tile.h"

namespace cmtl {
namespace tile {
namespace {

/** Accelerator under test + memory + a direct cpu-port driver. */
class AccelHarness : public Model
{
  public:
    std::unique_ptr<DotProductBase> accel;
    stdlib::TestMemory mem;
    ParentReqRespBundle cpu;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> driver;

    explicit AccelHarness(Level level)
        : Model(nullptr, "harness"), mem(this, "mem", 1, 2),
          cpu(this, "cpu", cpuIfcTypes())
    {
        switch (level) {
          case Level::FL:
            accel = std::make_unique<DotProductFL>(this, "accel");
            break;
          case Level::CL:
            accel = std::make_unique<DotProductCL>(this, "accel");
            break;
          case Level::RTL:
            accel = std::make_unique<DotProductRTL>(this, "accel");
            break;
        }
        connectReqResp(*this, cpu, accel->cpu_ifc);
        connectReqResp(*this, accel->mem_ifc, mem.ifc[0]);
        driver = std::make_unique<stdlib::ParentReqRespQueueAdapter>(cpu);
        tickFl("drive", [this] { driver->xtick(); });
    }

    /** Run one dot product through the control protocol. */
    uint32_t
    compute(SimulationTool &sim, uint32_t size, uint32_t src0,
            uint32_t src1)
    {
        auto &types = driver->types;
        driver->pushReq(types.req.pack({1, size}));
        driver->pushReq(types.req.pack({2, src0}));
        driver->pushReq(types.req.pack({3, src1}));
        driver->pushReq(types.req.pack({0, 0}));
        int guard = 0;
        while (driver->resp_q.empty() && ++guard < 200000)
            sim.cycle();
        EXPECT_LT(guard, 200000) << "accelerator never responded";
        if (driver->resp_q.empty())
            return 0xdeadbeef;
        return static_cast<uint32_t>(
            types.resp.get(driver->getResp(), "data").toUint64());
    }
};

class DotProdLevels : public ::testing::TestWithParam<Level>
{};

TEST_P(DotProdLevels, ComputesDotProducts)
{
    AccelHarness h(GetParam());
    // src0 = 1..n at 0x100, src1 = 2,4,6,... at 0x200.
    for (uint32_t i = 0; i < 16; ++i) {
        h.mem.writeWord(0x100 + i * 4, i + 1);
        h.mem.writeWord(0x200 + i * 4, 2 * (i + 1));
    }
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();

    for (uint32_t n : {1u, 3u, 16u}) {
        uint32_t expect = 0;
        for (uint32_t i = 0; i < n; ++i)
            expect += (i + 1) * 2 * (i + 1);
        EXPECT_EQ(h.compute(sim, n, 0x100, 0x200), expect)
            << "size " << n;
    }
}

TEST_P(DotProdLevels, BackToBackRunsReuseConfiguration)
{
    AccelHarness h(GetParam());
    for (uint32_t i = 0; i < 8; ++i) {
        h.mem.writeWord(0x100 + i * 4, 3);
        h.mem.writeWord(0x300 + i * 4, 7);
    }
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    // Same configuration twice, then a different src0.
    EXPECT_EQ(h.compute(sim, 8, 0x100, 0x300), 8u * 21);
    EXPECT_EQ(h.compute(sim, 8, 0x100, 0x300), 8u * 21);
    EXPECT_EQ(h.compute(sim, 8, 0x300, 0x300), 8u * 49);
}

TEST_P(DotProdLevels, WrapsModulo32Bits)
{
    AccelHarness h(GetParam());
    for (uint32_t i = 0; i < 4; ++i) {
        h.mem.writeWord(0x100 + i * 4, 0x90000000u + i);
        h.mem.writeWord(0x200 + i * 4, 0x80000001u);
    }
    auto elab = h.elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint32_t expect = 0;
    for (uint32_t i = 0; i < 4; ++i)
        expect += (0x90000000u + i) * 0x80000001u;
    EXPECT_EQ(h.compute(sim, 4, 0x100, 0x200), expect);
}

INSTANTIATE_TEST_SUITE_P(Levels, DotProdLevels,
                         ::testing::Values(Level::FL, Level::CL,
                                           Level::RTL),
                         [](const auto &info) {
                             return levelName(info.param);
                         });

TEST(DotProdTiming, ClPipelinesFlMemoryAccess)
{
    // The CL model pipelines memory requests; the FL model issues one
    // at a time (paper Figures 7 vs 8): CL completes in fewer cycles.
    uint64_t cycles[2];
    int idx = 0;
    for (Level level : {Level::FL, Level::CL}) {
        AccelHarness h(level);
        for (uint32_t i = 0; i < 32; ++i) {
            h.mem.writeWord(0x100 + i * 4, i);
            h.mem.writeWord(0x400 + i * 4, i);
        }
        auto elab = h.elaborate();
        SimulationTool sim(elab);
        sim.reset();
        uint64_t start = sim.numCycles();
        h.compute(sim, 32, 0x100, 0x400);
        cycles[idx++] = sim.numCycles() - start;
    }
    EXPECT_LT(cycles[1] * 2, cycles[0])
        << "CL should be at least 2x faster than unpipelined FL";
}

} // namespace
} // namespace tile
} // namespace cmtl
