#include <gtest/gtest.h>

#include "tile/isa.h"
#include "tile/programs.h"

namespace cmtl {
namespace tile {
namespace {

TEST(Isa, EncodeDecodeRoundTrip)
{
    uint32_t inst = encodeR(Op::Mul, 3, 4, 5);
    DecodedInst d = decode(inst);
    EXPECT_EQ(d.op, Op::Mul);
    EXPECT_EQ(d.rd, 3);
    EXPECT_EQ(d.rs1, 4);
    EXPECT_EQ(d.rs2, 5);
    EXPECT_TRUE(d.isRType());

    uint32_t i2 = encodeI(Op::Addi, 7, 2, -5);
    DecodedInst d2 = decode(i2);
    EXPECT_EQ(d2.op, Op::Addi);
    EXPECT_EQ(d2.rd, 7);
    EXPECT_EQ(d2.rs1, 2);
    EXPECT_EQ(d2.imm, -5);
    EXPECT_FALSE(d2.isRType());
}

TEST(Isa, DisassembleIsReadable)
{
    EXPECT_EQ(disassemble(encodeI(Op::Addi, 3, 3, -1)),
              "addi r3, r3, -1");
    EXPECT_EQ(disassemble(encodeR(Op::Add, 0, 0, 0)), "nop");
    EXPECT_EQ(disassemble(encodeI(Op::Halt, 0, 0, 0)), "halt");
    EXPECT_EQ(disassemble(encodeI(Op::Lw, 5, 1, 8)), "lw r5, 8(r1)");
}

TEST(Assembler, BranchFixupsResolve)
{
    Assembler a;
    a.addi(1, 0, 3);
    a.label("loop");
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    auto image = a.finish();
    ASSERT_EQ(image.size(), 4u);
    // bne at word 2 targets word 1: offset = (4 - (8+4))/4 = -2.
    DecodedInst d = decode(image[2]);
    EXPECT_EQ(d.op, Op::Bne);
    EXPECT_EQ(d.imm, -2);
}

TEST(Assembler, UndefinedLabelThrows)
{
    Assembler a;
    a.bne(1, 0, "nowhere");
    EXPECT_THROW(a.finish(), std::invalid_argument);
}

TEST(Assembler, DuplicateLabelThrows)
{
    Assembler a;
    a.label("x");
    EXPECT_THROW(a.label("x"), std::invalid_argument);
}

TEST(Assembler, LiHandlesFullRange)
{
    for (uint32_t value : {0u, 1u, 0x7fffu, 0x8000u, 0x12345678u,
                           0xffffffffu, 0xdead8000u}) {
        Assembler a;
        a.li(1, value);
        a.halt();
        GoldenIss iss(a.finish());
        iss.run();
        EXPECT_EQ(iss.reg(1), value) << std::hex << value;
    }
}

TEST(GoldenIss, ArithmeticAndBranches)
{
    // Sum 1..10 via a loop.
    Assembler a;
    a.addi(1, 0, 10); // counter
    a.addi(2, 0, 0);  // sum
    a.label("loop");
    a.add(2, 2, 1);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    GoldenIss iss(a.finish());
    uint64_t n = iss.run();
    EXPECT_TRUE(iss.halted());
    EXPECT_EQ(iss.reg(2), 55u);
    EXPECT_EQ(n, 2 + 3 * 10 + 1u);
}

TEST(GoldenIss, LoadsAndStores)
{
    Assembler a;
    a.li(1, 0x1000);
    a.lw(2, 1, 0);
    a.addi(2, 2, 1);
    a.sw(2, 1, 4);
    a.halt();
    GoldenIss iss(a.finish());
    iss.writeMem(0x1000, 41);
    iss.run();
    EXPECT_EQ(iss.readMem(0x1004), 42u);
}

TEST(GoldenIss, SignedOps)
{
    Assembler a;
    a.addi(1, 0, -3);
    a.addi(2, 0, 2);
    a.slt(3, 1, 2); // -3 < 2 -> 1
    a.slt(4, 2, 1); // 2 < -3 -> 0
    a.blt(1, 2, "taken");
    a.addi(5, 0, 99); // skipped
    a.label("taken");
    a.halt();
    GoldenIss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.reg(3), 1u);
    EXPECT_EQ(iss.reg(4), 0u);
    EXPECT_EQ(iss.reg(5), 0u);
}

TEST(GoldenIss, R0IsHardwiredZero)
{
    Assembler a;
    a.addi(0, 0, 77);
    a.add(1, 0, 0);
    a.halt();
    GoldenIss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.reg(0), 0u);
    EXPECT_EQ(iss.reg(1), 0u);
}

TEST(GoldenIss, AcceleratorProtocol)
{
    Assembler a;
    a.li(1, 0x100); // src0
    a.li(2, 0x200); // src1
    a.addi(3, 0, 3); // size
    a.accx(0, 3, 1);
    a.accx(0, 1, 2);
    a.accx(0, 2, 3);
    a.accx(4, 0, 0);
    a.halt();
    GoldenIss iss(a.finish());
    for (uint32_t i = 0; i < 3; ++i) {
        iss.writeMem(0x100 + i * 4, i + 1); // 1 2 3
        iss.writeMem(0x200 + i * 4, 10);    // 10 10 10
    }
    iss.run();
    EXPECT_EQ(iss.reg(4), 60u);
}

TEST(Programs, ScalarAndAccelMvmultAgreeOnGoldenIss)
{
    const int n = 8;
    for (bool accel : {false, true}) {
        Workload w = accel ? makeMvmultAccel(n) : makeMvmultScalar(n, 4);
        GoldenIss iss(w.image);
        for (uint32_t i = 0; i < static_cast<uint32_t>(n * n); ++i)
            iss.writeMem(w.matrix_addr + i * 4, mvmultElement(1, i));
        for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i)
            iss.writeMem(w.vector_addr + i * 4, mvmultElement(2, i));
        uint64_t executed = iss.run(10000000);
        EXPECT_TRUE(iss.halted()) << (accel ? "accel" : "scalar");
        EXPECT_GT(executed, 0u);
        auto expect = expectedMvmult(w, 1);
        for (int r = 0; r < n; ++r) {
            EXPECT_EQ(iss.readMem(w.out_addr + r * 4), expect[r])
                << "row " << r << (accel ? " accel" : " scalar");
        }
    }
}

} // namespace
} // namespace tile
} // namespace cmtl
