/**
 * ArenaLayout: the physical data layout is an implementation detail.
 *
 * The contract under test: simulated architecture state, VCD streams
 * and snapshot digests are byte-identical across layout policies
 * (elab vs profile), backends (interp, bytecode, cpp-design) and
 * thread counts (1, 4) — on an RTL 8x8 mesh and a CL multi-tile
 * system. Plus: policy-name round trips, bit-packing value round
 * trips at the 1/17/64/65-bit corner widths, snapshot restore across
 * layouts in both directions, and a forced mid-run PGO re-layout
 * (bytecode warm-up -> heat-refined native tier) holding lockstep
 * state with a reference simulator across the arena migration.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/jit_cpp.h"
#include "core/layout.h"
#include "core/psim.h"
#include "core/sim.h"
#include "core/snap.h"
#include "core/vcd.h"
#include "net/traffic.h"
#include "tile/multitile.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

// ------------------------------------------------------ policy names

TEST(LayoutNames, RoundTripsAndRejectsGarbage)
{
    EXPECT_EQ(layoutPolicyName(LayoutPolicy::Elab), std::string("elab"));
    EXPECT_EQ(layoutPolicyName(LayoutPolicy::Profile),
              std::string("profile"));
    EXPECT_EQ(layoutPolicyFromName("elab"), LayoutPolicy::Elab);
    EXPECT_EQ(layoutPolicyFromName("profile"), LayoutPolicy::Profile);
    EXPECT_THROW(layoutPolicyFromName("fastest"), std::invalid_argument);
    EXPECT_THROW(layoutPolicyFromName(""), std::invalid_argument);
}

TEST(LayoutNames, PolicyIsNotPartOfTheBackendName)
{
    // --layout is orthogonal to --backend: the canonical backend
    // string must not change when the layout does.
    SimConfig cfg = SimConfig::fromString("cpp-design");
    cfg.layout = LayoutPolicy::Profile;
    EXPECT_EQ(cfg.toString(), "cpp-design");
}

// ------------------------------------------- cross-layout equivalence

void
expectSameState(Simulator &a, Simulator &b, const std::string &ctx)
{
    const auto &nets = a.elaboration().nets;
    for (const Net &net : nets) {
        ASSERT_EQ(a.readNet(net.id), b.readNet(net.id))
            << ctx << ": net " << net.name << " diverged at cycle "
            << a.numCycles();
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

SimConfig
layoutCfg(const std::string &backend, LayoutPolicy policy, int threads)
{
    SimConfig cfg = SimConfig::fromString(backend);
    cfg.layout = policy;
    cfg.threads = threads;
    return cfg;
}

bool
needsCompiler(const std::string &backend)
{
    return backend.find("cpp") != std::string::npos;
}

class LayoutEquiv
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    void
    SetUp() override
    {
        auto [backend, threads] = GetParam();
        if (needsCompiler(backend) && !CppJit::compilerAvailable())
            GTEST_SKIP() << "no host compiler";
        if (threads > 1 &&
            SimConfig::fromString(backend).exec == ExecMode::Interp)
            GTEST_SKIP() << "boxed backends are sequential-only";
    }
};

TEST_P(LayoutEquiv, Mesh8x8RtlStateVcdAndDigestMatchAcrossLayouts)
{
    auto [backend, threads] = GetParam();
    const int nrouters = 64, cycles = 120; // the fig14 8x8 mesh
    auto makeTop = [&] {
        return std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                nrouters, 4, 0.3, 7);
    };
    const std::string tag = backend + "_t" + std::to_string(threads) +
                            "_" + std::to_string(::getpid());

    // Reference: boxed tree-walk interpreter, elab layout.
    auto gt = makeTop();
    auto golden = makeSimulator(
        gt->elaborate(), layoutCfg("interp", LayoutPolicy::Elab, 1));
    const std::string golden_path =
        ::testing::TempDir() + "layout_golden_" + tag + ".vcd";
    {
        VcdWriter vcd(*golden, golden_path);
        golden->reset();
        golden->cycle(cycles);
        vcd.close();
    }
    const std::string golden_vcd = slurp(golden_path);
    ASSERT_FALSE(golden_vcd.empty());
    const uint64_t golden_digest = stateDigest(*golden);

    for (LayoutPolicy policy :
         {LayoutPolicy::Elab, LayoutPolicy::Profile}) {
        const std::string ctx = backend +
                                " threads=" + std::to_string(threads) +
                                " layout=" + layoutPolicyName(policy);
        const std::string path = ::testing::TempDir() + "layout_run_" +
                                 layoutPolicyName(policy) + "_" + tag +
                                 ".vcd";
        auto tt = makeTop();
        auto sim = makeSimulator(tt->elaborate(),
                                 layoutCfg(backend, policy, threads));
        {
            VcdWriter vcd(*sim, path);
            sim->reset();
            sim->cycle(cycles);
            vcd.close();
        }
        EXPECT_EQ(sim->numCycles(), golden->numCycles()) << ctx;
        expectSameState(*golden, *sim, ctx);
        EXPECT_EQ(stateDigest(*sim), golden_digest) << ctx;
        EXPECT_EQ(slurp(path), golden_vcd)
            << "VCD streams differ: " << ctx;
        // Boxed (interp-hosted) stores have no physical layout, so
        // their stats report the default; arena backends must report
        // the policy they were built with.
        if (backend != "interp") {
            EXPECT_EQ(std::string(
                          layoutPolicyName(sim->layoutStats().policy)),
                      std::string(layoutPolicyName(policy)))
                << ctx;
        }
        std::remove(path.c_str());
    }
    std::remove(golden_path.c_str());
}

TEST_P(LayoutEquiv, MultiTileClDigestsMatchAcrossLayouts)
{
    using namespace tile;
    auto [backend, threads] = GetParam();
    Workload w = makeMvmultMultiTile(4, /*use_accel=*/false);
    auto makeSys = [&] {
        auto sys = std::make_unique<MultiTileSystem>(
            "sys", std::vector<std::array<Level, 3>>{
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL}});
        sys->loadProgram(w.image);
        loadMvmultData(sys->memNode(), w);
        return sys;
    };

    auto sys_g = makeSys();
    auto golden = makeSimulator(
        sys_g->elaborate(), layoutCfg("interp", LayoutPolicy::Elab, 1));
    golden->reset();
    const int cycles = 1500;
    golden->cycle(cycles);
    const uint64_t golden_digest = stateDigest(*golden);

    for (LayoutPolicy policy :
         {LayoutPolicy::Elab, LayoutPolicy::Profile}) {
        const std::string ctx = backend +
                                " threads=" + std::to_string(threads) +
                                " layout=" + layoutPolicyName(policy);
        auto sys = makeSys();
        auto sim = makeSimulator(sys->elaborate(),
                                 layoutCfg(backend, policy, threads));
        sim->reset();
        sim->cycle(cycles);
        EXPECT_EQ(sim->numCycles(), golden->numCycles()) << ctx;
        expectSameState(*golden, *sim, ctx);
        EXPECT_EQ(stateDigest(*sim), golden_digest) << ctx;
    }
}

INSTANTIATE_TEST_SUITE_P(
    LayoutMatrix, LayoutEquiv,
    ::testing::Combine(::testing::Values("interp", "bytecode",
                                         "cpp-design"),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &i) {
        std::string name = std::get<0>(i.param) + "_t" +
                           std::to_string(std::get<1>(i.param));
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

// ------------------------------------------------ bit-packing widths

/**
 * Nets at the packing corner widths: 1-, 3- and 17-bit nets are
 * narrow enough to pack (several per flop class, so each class has
 * word mates); 64 fills a word exactly so it stays exclusive; 65
 * spans two words. Every port is mirrored through a register so both
 * comb and flopped values cross the packed accessor paths.
 */
class WidthsTop : public Model
{
  public:
    InPort in1, in1b, in3, in17, in64, in65;
    OutPort out1, out1b, out3, out17, out64, out65;

    explicit WidthsTop(const std::string &name)
        : Model(nullptr, name), in1(this, "in1", 1),
          in1b(this, "in1b", 1), in3(this, "in3", 3),
          in17(this, "in17", 17), in64(this, "in64", 64),
          in65(this, "in65", 65), out1(this, "out1", 1),
          out1b(this, "out1b", 1), out3(this, "out3", 3),
          out17(this, "out17", 17), out64(this, "out64", 64),
          out65(this, "out65", 65)
    {
        auto &b = tickRtl("regs");
        b.assign(out1, rd(in1));
        b.assign(out1b, rd(in1b));
        b.assign(out3, rd(in3));
        b.assign(out17, rd(in17));
        b.assign(out64, rd(in64));
        b.assign(out65, rd(in65));
    }

    std::string typeName() const override { return "WidthsTop"; }
};

TEST(LayoutPacking, CornerWidthValuesRoundTripAcrossLayouts)
{
    auto mk = [](LayoutPolicy policy) {
        auto top = std::make_unique<WidthsTop>("top");
        SimConfig cfg = SimConfig::fromString("optinterp");
        cfg.layout = policy;
        auto sim = std::make_unique<SimulationTool>(top->elaborate(),
                                                    cfg);
        return std::make_pair(std::move(top), std::move(sim));
    };
    auto [top_e, elab] = mk(LayoutPolicy::Elab);
    auto [top_p, prof] = mk(LayoutPolicy::Profile);

    // The profile layout must actually pack the narrow nets (the
    // 1/3/17-bit in and out groups each share a word within their
    // flop class — no measured profile exists here, so packing is by
    // width alone) and keep the 64/65-bit nets word-aligned.
    LayoutStats ls = prof->layoutStats();
    EXPECT_GE(ls.packed_nets, 4);
    EXPECT_GT(ls.packed_bits_saved, 0);
    EXPECT_LT(ls.words_per_phase, elab->layoutStats().words_per_phase);

    Bits wide65 = Bits::fromWords(65, {0xdeadbeefcafef00dull, 1});
    std::vector<std::pair<int, Bits>> pokes = {
        {top_e->in1.netId(), Bits(1, 1)},
        {top_e->in1b.netId(), Bits(1, 0)},
        {top_e->in3.netId(), Bits(3, 5)},
        {top_e->in17.netId(), Bits(17, 0x1ffff)},
        {top_e->in64.netId(), Bits(64, 0xa5a5a5a5a5a5a5a5ull)},
        {top_e->in65.netId(), wide65},
    };
    elab->reset();
    prof->reset();
    for (auto &[net, value] : pokes) {
        elab->pokeNet(net, value);
        prof->pokeNet(net, value);
    }
    elab->cycle(2);
    prof->cycle(2);

    // Values survive the packed write -> flop -> read round trip in
    // both layouts, and the full state agrees net-for-net.
    EXPECT_EQ(prof->readNet(top_p->out1.netId()), Bits(1, 1));
    EXPECT_EQ(prof->readNet(top_p->out1b.netId()), Bits(1, 0));
    EXPECT_EQ(prof->readNet(top_p->out3.netId()), Bits(3, 5));
    EXPECT_EQ(prof->readNet(top_p->out17.netId()), Bits(17, 0x1ffff));
    EXPECT_EQ(prof->readNet(top_p->out64.netId()),
              Bits(64, 0xa5a5a5a5a5a5a5a5ull));
    EXPECT_EQ(prof->readNet(top_p->out65.netId()), wide65);
    expectSameState(*elab, *prof, "widths elab vs profile");
    EXPECT_EQ(stateDigest(*elab), stateDigest(*prof));

    // Writing one packed field must not disturb its word-mates.
    prof->pokeNet(top_p->in1.netId(), Bits(1, 0));
    EXPECT_EQ(prof->readNet(top_p->in1b.netId()), Bits(1, 0));
    EXPECT_EQ(prof->readNet(top_p->in3.netId()), Bits(3, 5));
    prof->pokeNet(top_p->in3.netId(), Bits(3, 2));
    EXPECT_EQ(prof->readNet(top_p->in3.netId()), Bits(3, 2));
    EXPECT_EQ(prof->readNet(top_p->in17.netId()), Bits(17, 0x1ffff));
}

// ------------------------------------------- snapshot across layouts

TEST(LayoutSnapshot, RestoresAcrossLayoutsBothDirections)
{
    const int nrouters = 16, warm = 100, tail = 100;
    auto makeTop = [&] {
        return std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                nrouters, 4, 0.3, 13);
    };
    auto run = [&](LayoutPolicy policy, int cycles) {
        auto top = makeTop();
        auto sim = makeSimulator(top->elaborate(),
                                 layoutCfg("bytecode", policy, 1));
        sim->reset();
        sim->cycle(cycles);
        return std::make_pair(std::move(top), std::move(sim));
    };

    // Reference: one uninterrupted elab-layout run.
    auto [rt, ref] = run(LayoutPolicy::Elab, warm + tail);

    // Save under one policy, restore under the other, in both
    // directions; digests are layout-independent so the snapshot
    // carries no trace of the source layout's physical order.
    for (bool elab_to_profile : {true, false}) {
        LayoutPolicy src = elab_to_profile ? LayoutPolicy::Elab
                                           : LayoutPolicy::Profile;
        LayoutPolicy dst = elab_to_profile ? LayoutPolicy::Profile
                                           : LayoutPolicy::Elab;
        auto [st, saver] = run(src, warm);
        SimSnapshot snap = snapSave(*saver);
        EXPECT_EQ(snap.layout_policy, layoutPolicyName(src));

        auto top = makeTop();
        auto sim = makeSimulator(top->elaborate(),
                                 layoutCfg("bytecode", dst, 1));
        snapRestore(*sim, snap);
        EXPECT_EQ(stateDigest(*sim), snap.digest());
        sim->cycle(tail);
        std::string ctx = std::string("restore ") +
                          layoutPolicyName(src) + " -> " +
                          layoutPolicyName(dst);
        EXPECT_EQ(sim->numCycles(), ref->numCycles()) << ctx;
        expectSameState(*ref, *sim, ctx);
        EXPECT_EQ(stateDigest(*sim), stateDigest(*ref)) << ctx;
    }
}

// --------------------------------------------- mid-run PGO re-layout

/**
 * Force a genuine profile-guided re-layout: cpp-design + profile
 * layout defers codegen past a short warm-up window, gathers block
 * heat on the bytecode tier, lays the arena out again from the
 * measured heat and adopts the native tier with a live state
 * migration. The simulation must agree with an elab-layout reference
 * every step of the way — before, across and after the migration.
 */
TEST(LayoutPgo, MidRunRelayoutKeepsLockstepState)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";

    auto ta = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                               4, 0.3, 21);
    auto tb = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                               4, 0.3, 21);
    auto golden = makeSimulator(
        ta->elaborate(), layoutCfg("optinterp", LayoutPolicy::Elab, 1));

    SimConfig cfg = SimConfig::fromString("cpp-design");
    cfg.layout = LayoutPolicy::Profile;
    cfg.pgo_warm_cycles = 64;
    cfg.jit_cache = false; // force a real (slow) background compile
    SimulationTool sim(tb->elaborate(), cfg);
    ASSERT_TRUE(sim.tierPending());
    // The initial arena is already profile-laid-out (plan-free), but
    // not yet heat-refined.
    EXPECT_EQ(sim.layoutStats().policy, LayoutPolicy::Profile);
    EXPECT_FALSE(sim.layoutStats().pgo);

    golden->reset();
    sim.reset();
    uint64_t driven = sim.numCycles(); // reset() itself runs a cycle
    uint64_t warm = 0;
    while (sim.tierPending() && warm < 2000000) {
        golden->cycle(32);
        sim.cycle(32);
        driven += 32;
        warm += 32;
        expectSameState(*golden, sim, "pgo warm-up tier");
    }
    ASSERT_FALSE(sim.tierPending()) << "compile never finished";
    ASSERT_GT(warm, 0u);
    EXPECT_GT(sim.specStats().tierSwapCycle,
              static_cast<int64_t>(cfg.pgo_warm_cycles));

    // The adopted tier runs on the heat-refined layout over migrated
    // state.
    EXPECT_TRUE(sim.layoutStats().pgo);
    EXPECT_EQ(sim.layoutStats().policy, LayoutPolicy::Profile);

    golden->cycle(200);
    sim.cycle(200);
    driven += 200;
    EXPECT_EQ(sim.numCycles(), driven);
    EXPECT_EQ(sim.numCycles(), golden->numCycles());
    expectSameState(*golden, sim, "pgo native tier");
    EXPECT_EQ(stateDigest(*golden), stateDigest(sim));
}

} // namespace
} // namespace cmtl
