/**
 * Activity-gating equivalence (SimConfig::gating).
 *
 * The contract under test: gating is a pure optimization. A gated run
 * — on the sequential kernel (per-step dirty bits over the static
 * schedule) and on ParSim (per-island quiescence, closed over the push
 * graph) — must be bit-identical to the same run with gating off:
 * every net every sampled cycle, the full VCD byte stream, and the
 * end-to-end workload statistics. The tests also assert the gate
 * actually fires (gatedSteps() > 0) so a silently disabled gate cannot
 * pass as "equivalent", and stress the external-write path by poking
 * driven nets mid-run on both sides.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/psim.h"
#include "core/sim.h"
#include "core/vcd.h"
#include "net/traffic.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

SimConfig
gateCfg(SpecMode spec, int threads, bool gating)
{
    SimConfig cfg;
    cfg.exec = ExecMode::OptInterp;
    cfg.spec = spec;
    cfg.threads = threads;
    cfg.gating = gating;
    return cfg;
}

std::unique_ptr<MeshTrafficTop>
makeTop(uint64_t seed)
{
    // 0.15 injection leaves real idle stretches, so gating has
    // something to skip; seeds vary per test to decorrelate them.
    return std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16, 4,
                                            0.15, seed);
}

void
expectSameState(Simulator &a, Simulator &b, const std::string &ctx)
{
    const auto &nets = a.elaboration().nets;
    for (const Net &net : nets) {
        ASSERT_EQ(a.readNet(net.id), b.readNet(net.id))
            << ctx << ": net " << net.name << " diverged at cycle "
            << a.numCycles();
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Lockstep a gated simulator against an ungated one over identically
 * constructed designs, poking the same driven net mid-run on both
 * (drivers must overwrite the poked value on the next settle even
 * when gating considered their steps clean).
 */
void
runGatingEquiv(SpecMode spec, int threads, int cycles, uint64_t seed)
{
    auto ta = makeTop(seed);
    auto tb = makeTop(seed);
    auto on = makeSimulator(ta->elaborate(), gateCfg(spec, threads, true));
    auto off =
        makeSimulator(tb->elaborate(), gateCfg(spec, threads, false));

    std::ostringstream ctx;
    ctx << "spec=" << static_cast<int>(spec) << " threads=" << threads;

    on->reset();
    off->reset();
    int poke_net = static_cast<int>(on->elaboration().nets.size()) / 2;
    for (int c = 0; c < cycles; ++c) {
        if (c == cycles / 2) {
            Bits v(on->elaboration().nets[poke_net].nbits, 1);
            on->pokeNet(poke_net, v);
            off->pokeNet(poke_net, v);
        }
        on->cycle();
        off->cycle();
        if (c % 16 == 15)
            expectSameState(*on, *off, ctx.str());
    }
    expectSameState(*on, *off, ctx.str());
    EXPECT_EQ(ta->stats().received, tb->stats().received) << ctx.str();
    EXPECT_EQ(ta->stats().latency_sum, tb->stats().latency_sum)
        << ctx.str();
    EXPECT_GT(tb->stats().received, 0u) << "degenerate scenario";
    // The ungated side must never count a gated step (whether the
    // gated side fires here depends on traffic; GatingQuiescence
    // asserts firing under controlled conditions).
    EXPECT_EQ(off->gatedSteps(), 0u) << ctx.str();
}

class GatingEquiv
    : public ::testing::TestWithParam<std::tuple<int, SpecMode>>
{};

TEST_P(GatingEquiv, StateAndStatsMatchUngated)
{
    int threads = 0;
    SpecMode spec{};
    std::tie(threads, spec) = GetParam();
    runGatingEquiv(spec, threads, 128, 31 + threads);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndSpec, GatingEquiv,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(SpecMode::None,
                                         SpecMode::Bytecode)));

TEST(GatingVcd, ByteIdenticalWaveformsBothKernels)
{
    const std::string on_path = ::testing::TempDir() + "gate_on.vcd";
    const std::string off_path = ::testing::TempDir() + "gate_off.vcd";
    for (int threads : {1, 4}) {
        auto ta = makeTop(23);
        auto tb = makeTop(23);
        {
            auto on = makeSimulator(
                ta->elaborate(),
                gateCfg(SpecMode::Bytecode, threads, true));
            VcdWriter vcd(*on, on_path);
            on->reset();
            on->cycle(96);
            vcd.close();
        }
        {
            auto off = makeSimulator(
                tb->elaborate(),
                gateCfg(SpecMode::Bytecode, threads, false));
            VcdWriter vcd(*off, off_path);
            off->reset();
            off->cycle(96);
            vcd.close();
        }
        std::string a = slurp(on_path);
        std::string b = slurp(off_path);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "VCD streams differ at threads=" << threads;
    }
    std::remove(on_path.c_str());
    std::remove(off_path.c_str());
}

/**
 * A design with no stimulus goes fully quiescent: after reset settles,
 * every subsequent sequential comb step / ParSim island superstep that
 * recomputes an unchanged value must be skipped, so the gated-step
 * counter grows every cycle — on both kernels and both static-schedule
 * spec modes.
 */
class GatingQuiescence
    : public ::testing::TestWithParam<std::tuple<int, SpecMode>>
{};

TEST_P(GatingQuiescence, IdleDesignSkipsMostWork)
{
    int threads = 0;
    SpecMode spec{};
    std::tie(threads, spec) = GetParam();
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                                4, 0.0, 3);
    auto sim =
        makeSimulator(top->elaborate(), gateCfg(spec, threads, true));
    sim->reset();
    sim->cycle(8); // drain any reset transient
    uint64_t before = sim->gatedSteps();
    sim->cycle(64);
    uint64_t gained = sim->gatedSteps() - before;
    // At 0.0 injection nothing moves; expect at least one gated
    // step/superstep per cycle (in practice nearly the whole
    // schedule sequentially, every island's supersteps on ParSim).
    EXPECT_GE(gained, 64u);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndSpec, GatingQuiescence,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(SpecMode::None,
                                         SpecMode::Bytecode)));

} // namespace
} // namespace cmtl
