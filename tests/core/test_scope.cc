/**
 * @file
 * SimScope observability-layer tests: attach/detach, hot-block
 * ranking, ParSim phase timing across thread counts, val/rdy channel
 * accounting against a hand-computed scenario, JSON snapshot schema —
 * plus the SimJIT cache-key regression tests (compiler version and
 * flags in the key, nested cache dirs, mkdir failure reporting).
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <memory>

#include "core/jit_cpp.h"
#include "core/psim.h"
#include "core/scope.h"
#include "core/sim.h"
#include "net/traffic.h"
#include "stdlib/valrdy.h"
#include "test_models.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;
using testmodels::Counter;

// ------------------------------------------------------------------
// Attach / detach lifecycle
// ------------------------------------------------------------------

TEST(Scope, AttachDetachRestoresFastPath)
{
    auto top = std::make_unique<Counter>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    EXPECT_EQ(sim.scopeProbe(), nullptr);

    SimScope scope(sim);
    EXPECT_TRUE(scope.attached());
    EXPECT_EQ(sim.scopeProbe(), &scope.probe());

    top->en.setValue(uint64_t(1));
    sim.cycle(10);
    EXPECT_EQ(scope.cycles(), 10u);

    scope.detach();
    EXPECT_FALSE(scope.attached());
    EXPECT_EQ(sim.scopeProbe(), nullptr);

    // The (inert) hook stays registered; counts stop advancing.
    sim.cycle(5);
    EXPECT_EQ(scope.cycles(), 10u);
    EXPECT_EQ(top->count.u64(), 15u); // simulation unaffected
}

TEST(Scope, ScopeDestructionDetaches)
{
    auto top = std::make_unique<Counter>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    {
        SimScope scope(sim);
        EXPECT_NE(sim.scopeProbe(), nullptr);
    }
    EXPECT_EQ(sim.scopeProbe(), nullptr);
    sim.cycle(3); // must not touch freed probe memory
}

// ------------------------------------------------------------------
// Hot-block ranking
// ------------------------------------------------------------------

TEST(Scope, HotBlocksHaveHierarchicalPathsAndCalls)
{
    auto top = std::make_unique<Counter>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    SimScope scope(sim);
    top->en.setValue(uint64_t(1));
    sim.cycle(100);

    auto hot = scope.hotBlocks();
    ASSERT_FALSE(hot.empty());
    EXPECT_EQ(hot[0].path, "top.seq");
    EXPECT_EQ(hot[0].calls, 100u);
    EXPECT_GE(hot[0].seconds, 0.0);
}

TEST(Scope, SampledTimingCountsEveryCall)
{
    auto top = std::make_unique<Counter>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    SimScope::Options opt;
    opt.timing = SimScope::Timing::Sampled;
    opt.sample_period = 8;
    SimScope scope(sim, opt);
    top->en.setValue(uint64_t(1));
    sim.cycle(64);

    // Calls are exact even in sampled mode; only timing is sampled.
    auto hot = scope.hotBlocks();
    ASSERT_FALSE(hot.empty());
    EXPECT_EQ(hot[0].calls, 64u);
}

// ------------------------------------------------------------------
// ParSim phase timing across thread counts
// ------------------------------------------------------------------

TEST(Scope, ParSimPhaseTimingAcrossThreadCounts)
{
    for (int threads : {1, 2, 4}) {
        auto top = std::make_unique<MeshTrafficTop>(
            "top", NetLevel::RTL, 16, 4, 0.30, 1);
        auto elab = top->elaborate();
        SimConfig cfg;
        cfg.exec = ExecMode::OptInterp;
        cfg.threads = threads;
        auto sim = makeSimulator(elab, cfg);

        SimScope scope(*sim);
        sim->cycle(64);
        EXPECT_EQ(scope.cycles(), 64u) << "threads " << threads;

        SimScope::PhaseBreakdown pb = scope.phaseBreakdown();
        EXPECT_GT(pb.settle_seconds + pb.tick_seconds + pb.flop_seconds,
                  0.0)
            << "threads " << threads;
        if (auto *par = dynamic_cast<ParSimulationTool *>(sim.get())) {
            EXPECT_EQ(pb.nislands, par->plan().nislands);
            // A 16-router RTL mesh partitioned across islands always
            // exchanges boundary values.
            if (par->plan().nislands > 1)
                EXPECT_GT(pb.boundary_bytes, 0u);
        } else {
            EXPECT_EQ(pb.nislands, 1);
            EXPECT_EQ(pb.boundary_bytes, 0u);
            EXPECT_EQ(pb.barrier_seconds, 0.0);
        }
        scope.detach();
    }
}

// ------------------------------------------------------------------
// Val/rdy channel accounting
// ------------------------------------------------------------------

/** Three bare channel wires driven by the test, plus one real block. */
class ChannelTop : public Model
{
  public:
    OutPort msg, val, rdy;
    Counter cnt;

    ChannelTop()
        : Model(nullptr, "top"), msg(this, "ch_msg", 8),
          val(this, "ch_val", 1), rdy(this, "ch_rdy", 1),
          cnt(this, "cnt", 8)
    {}
};

TEST(Scope, ValRdyStallAccountingHandComputed)
{
    auto top = std::make_unique<ChannelTop>();
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    SimScope scope(sim);
    scope.traceValRdy("top.ch", top->msg, top->val, top->rdy);

    // cycle:        1    2    3    4    5    6
    // val:          0    1    1    1    0    1
    // rdy:          0    0    0    1    0    1
    // outcome:    idle stall stall fire idle fire(latency 0)
    const int val_seq[] = {0, 1, 1, 1, 0, 1};
    const int rdy_seq[] = {0, 0, 0, 1, 0, 1};
    for (int i = 0; i < 6; ++i) {
        top->val.setValue(uint64_t(val_seq[i]));
        top->rdy.setValue(uint64_t(rdy_seq[i]));
        sim.cycle();
    }

    ASSERT_EQ(scope.channels().size(), 1u);
    const SimScope::ChannelStats &ch = scope.channels()[0];
    EXPECT_EQ(ch.cycles, 6u);
    EXPECT_EQ(ch.transfers, 2u);
    EXPECT_EQ(ch.stall_cycles, 2u);
    EXPECT_EQ(ch.idle_cycles, 2u);
    EXPECT_DOUBLE_EQ(ch.occupancy(), 4.0 / 6.0);
    // First transfer waited 2 stalled cycles, second fired at once.
    EXPECT_EQ(ch.latency.count(), 2u);
    EXPECT_EQ(ch.latency.sum(), 2u);
    EXPECT_EQ(ch.latency.min(), 0u);
    EXPECT_EQ(ch.latency.max(), 2u);
}

/** Producer/consumer pair with stdlib bundles for discovery. */
class Producer : public Model
{
  public:
    OutValRdy out;
    Producer(Model *parent, const std::string &name)
        : Model(parent, name), out(this, "out", 8)
    {}
};

class ConsumerM : public Model
{
  public:
    InValRdy in_;
    ConsumerM(Model *parent, const std::string &name)
        : Model(parent, name), in_(this, "in", 8)
    {}
};

class PcTop : public Model
{
  public:
    Producer prod;
    ConsumerM cons;
    Counter cnt;

    PcTop()
        : Model(nullptr, "top"), prod(this, "prod"), cons(this, "cons"),
          cnt(this, "cnt", 8)
    {
        connectValRdy(*this, prod.out, cons.in_);
    }
};

TEST(Scope, TraceAllValRdyDedupsConnectedEndpoints)
{
    auto top = std::make_unique<PcTop>();
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    SimScope scope(sim);

    // Both bundle endpoints share one net triple: one channel, named
    // after the shallowest (pre-order first) model owning the triple.
    EXPECT_EQ(scope.traceAllValRdy(), 1);
    ASSERT_EQ(scope.channels().size(), 1u);
    EXPECT_EQ(scope.channels()[0].name, "top.prod.out");

    // Re-running discovers nothing new.
    EXPECT_EQ(scope.traceAllValRdy(), 0);
}

TEST(Scope, TraceAllValRdyFindsMeshChannels)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 4,
                                                2, 0.2, 1);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    SimScope scope(sim);
    int n = scope.traceAllValRdy();
    EXPECT_GT(n, 0);
    sim.cycle(100);
    uint64_t transfers = 0;
    for (const auto &ch : scope.channels())
        transfers += ch.transfers;
    EXPECT_GT(transfers, 0u); // traffic actually flows near 20% load
}

// ------------------------------------------------------------------
// Snapshot schema / metrics registry
// ------------------------------------------------------------------

TEST(Scope, JsonSnapshotHasRequiredKeys)
{
    auto top = std::make_unique<ChannelTop>();
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    SimScope scope(sim);
    scope.traceValRdy("top.ch", top->msg, top->val, top->rdy);
    scope.metrics().addCounter("user.widgets", 3);
    sim.cycle(10);

    std::string json = scope.jsonSnapshot();
    for (const char *key :
         {"\"scope_version\":1", "\"kernel\":\"sequential\"",
          "\"timing\":\"exact\"", "\"cycles\":10", "\"phases\":",
          "\"islands\":", "\"blocks\":", "\"channels\":",
          "\"metrics\":", "\"user.widgets\":3",
          "\"scope.cycles\":10"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    // Single-line output (embeddable as a raw JSON value).
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Scope, HistogramBucketsArePowersOfTwo)
{
    ScopeHistogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(8);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 14u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 8u);
    auto b = h.buckets();
    ASSERT_EQ(b.size(), 5u); // buckets 0..4, top non-empty = [8,15]
    EXPECT_EQ(b[0], 1u);     // value 0
    EXPECT_EQ(b[1], 1u);     // value 1
    EXPECT_EQ(b[2], 2u);     // values 2,3
    EXPECT_EQ(b[3], 0u);     // values 4..7
    EXPECT_EQ(b[4], 1u);     // value 8
}

TEST(Scope, MetricsRegistryMerge)
{
    MetricsRegistry a, b;
    a.addCounter("n", 2);
    b.addCounter("n", 3);
    b.setGauge("g", 1.5);
    b.histogram("h").record(4);
    a.merge(b);
    EXPECT_EQ(a.counters().at("n"), 5u);
    EXPECT_DOUBLE_EQ(a.gauges().at("g"), 1.5);
    EXPECT_EQ(a.histograms().at("h").count(), 1u);
}

// ------------------------------------------------------------------
// SimJIT cache key and cache-dir regressions
// ------------------------------------------------------------------

class JitCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/cmtl-scope-jit-" + std::to_string(::getpid()) +
               "-" +
               std::to_string(
                   ::testing::UnitTest::GetInstance()->random_seed()) +
               "-" + ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
        ::system(("rm -rf '" + dir_ + "'").c_str());
    }

    void
    TearDown() override
    {
        ::system(("rm -rf '" + dir_ + "'").c_str());
    }

    std::string dir_;
};

const char *kTrivialSource =
    "extern \"C\" void cmtl_grp_0(unsigned long long *) {}\n";

TEST_F(JitCacheTest, KeyChangesWhenFlagsChange)
{
    CppJit plain(dir_, true);
    CppJit flagged(dir_, true, "-DCMTL_TEST=1");
    CppJit same(dir_, true);
    EXPECT_NE(plain.cachePathFor(kTrivialSource),
              flagged.cachePathFor(kTrivialSource));
    EXPECT_EQ(plain.cachePathFor(kTrivialSource),
              same.cachePathFor(kTrivialSource));
    // Different sources must never collide on a key.
    EXPECT_NE(plain.cachePathFor(kTrivialSource),
              plain.cachePathFor(std::string(kTrivialSource) + "//x\n"));
}

TEST_F(JitCacheTest, KeyCoversCompilerVersionAndFormat)
{
    CppJit jit(dir_, true);
    std::string path = jit.cachePathFor(kTrivialSource);
    // v2 format namespace: old cmtl_<hash>.so entries never match.
    EXPECT_NE(path.find("/cmtl_v2_"), std::string::npos);
    EXPECT_NE(CppJit::compilerVersion(), "");
    EXPECT_NE(jit.flagString().find("-O1"), std::string::npos);
}

TEST_F(JitCacheTest, CacheHitAcrossInstancesMissAcrossFlags)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";

    CppJit jit1(dir_, true);
    CppJitLibrary lib1 = jit1.compile(kTrivialSource, 1);
    EXPECT_FALSE(lib1.cacheHit());

    // Fresh instance, same dir/flags: warm, like a second process.
    CppJit jit2(dir_, true);
    CppJitLibrary lib2 = jit2.compile(kTrivialSource, 1);
    EXPECT_TRUE(lib2.cacheHit());

    // Same source, different flags: must recompile, not reuse.
    CppJit jit3(dir_, true, "-DCMTL_TEST=1");
    CppJitLibrary lib3 = jit3.compile(kTrivialSource, 1);
    EXPECT_FALSE(lib3.cacheHit());
}

TEST_F(JitCacheTest, NestedCacheDirIsCreatedRecursively)
{
    std::string nested = dir_ + "/a/b/c";
    CppJit jit(nested, true);
    struct stat st;
    ASSERT_EQ(::stat(nested.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
}

TEST_F(JitCacheTest, UncreatableCacheDirThrows)
{
    // A regular file blocks the path: mkdir must fail loudly.
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    std::ofstream(dir_ + "/blocker").put('x');
    EXPECT_THROW(CppJit(dir_ + "/blocker/sub", true),
                 std::runtime_error);
}

} // namespace
} // namespace cmtl
