#include <gtest/gtest.h>

#include <deque>

#include "core/sim.h"
#include "test_models.h"

namespace cmtl {
namespace {

using testmodels::allModes;
using testmodels::Counter;
using testmodels::modeName;
using testmodels::Mux;
using testmodels::MuxReg;
using testmodels::Register;

class SimModes : public ::testing::TestWithParam<SimConfig>
{};

TEST_P(SimModes, RegisterDelaysByOneCycle)
{
    auto top = std::make_unique<Register>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());

    top->in_.setValue(uint64_t(0xab));
    EXPECT_EQ(top->out.u64(), 0u);
    sim.cycle();
    EXPECT_EQ(top->out.u64(), 0xabu);
    top->in_.setValue(uint64_t(0xcd));
    EXPECT_EQ(top->out.u64(), 0xabu); // not yet clocked
    sim.cycle();
    EXPECT_EQ(top->out.u64(), 0xcdu);
}

TEST_P(SimModes, MuxIsCombinational)
{
    auto top = std::make_unique<Mux>(nullptr, "top", 8, 4);
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());

    for (int i = 0; i < 4; ++i)
        top->in_[i].setValue(uint64_t(0x10 + i));
    for (int i = 0; i < 4; ++i) {
        top->sel.setValue(uint64_t(i));
        sim.eval();
        EXPECT_EQ(top->out.u64(), 0x10u + i);
    }
}

TEST_P(SimModes, MuxRegComposition)
{
    // Paper Figure 4's test bench, across every execution mode.
    auto top = std::make_unique<MuxReg>(nullptr, "top", 8, 4);
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());

    for (int i = 0; i < 4; ++i)
        top->in_[i].setValue(uint64_t(0x40 + i));
    for (int i = 0; i < 4; ++i) {
        top->sel.setValue(uint64_t(i));
        sim.cycle();
        EXPECT_EQ(top->out.u64(), 0x40u + i);
    }
}

TEST_P(SimModes, CounterWithResetAndEnable)
{
    auto top = std::make_unique<Counter>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());

    top->en.setValue(uint64_t(1));
    sim.cycle(3);
    EXPECT_EQ(top->count.u64(), 3u);
    top->en.setValue(uint64_t(0));
    sim.cycle(5);
    EXPECT_EQ(top->count.u64(), 3u);
    sim.reset();
    EXPECT_EQ(top->count.u64(), 0u);
    top->en.setValue(uint64_t(1));
    sim.cycle();
    EXPECT_EQ(top->count.u64(), 1u);
    EXPECT_EQ(sim.numCycles(), 10u);
}

TEST_P(SimModes, CounterWrapsAtWidth)
{
    auto top = std::make_unique<Counter>(nullptr, "top", 4);
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());
    top->en.setValue(uint64_t(1));
    sim.cycle(20);
    EXPECT_EQ(top->count.u64(), 4u); // 20 mod 16
}

TEST_P(SimModes, LambdaTickAccumulator)
{
    // FL-style model: arbitrary host code in a tick block.
    class Accum : public Model
    {
      public:
        InPort in_;
        OutPort sum;
        Accum()
            : Model(nullptr, "accum"), in_(this, "in_", 16),
              sum(this, "sum", 16)
        {
            tickFl("logic", [this] {
                sum.setNext(sum.value() + in_.value());
            });
        }
    };
    auto top = std::make_unique<Accum>();
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());

    top->in_.setValue(uint64_t(10));
    sim.cycle(3);
    EXPECT_EQ(top->sum.u64(), 30u);
    top->in_.setValue(uint64_t(5));
    sim.cycle();
    EXPECT_EQ(top->sum.u64(), 35u);
}

TEST_P(SimModes, MixedIrAndLambdaPipeline)
{
    // Lambda tick produces values consumed by IR comb and registered
    // by IR tick: exercises specialization boundaries.
    class Mixed : public Model
    {
      public:
        Wire stage0, stage1;
        OutPort out;
        uint64_t n = 0;
        Mixed()
            : Model(nullptr, "mixed"), stage0(this, "stage0", 32),
              stage1(this, "stage1", 32), out(this, "out", 32)
        {
            tickFl("produce", [this] { stage0.setNext(++n); });
            auto &c = combinational("triple");
            c.assign(stage1, rd(stage0) * lit(32, 3));
            auto &t = tickRtl("capture");
            t.assign(out, rd(stage1));
        }
    };
    auto top = std::make_unique<Mixed>();
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());

    sim.cycle(5);
    // After 5 cycles: stage0 = 5 (just flopped), out = 3 * 4.
    EXPECT_EQ(top->stage0.u64(), 5u);
    EXPECT_EQ(top->out.u64(), 12u);
}

TEST_P(SimModes, WideSignalsFallBackGracefully)
{
    // 80-bit datapath: outside the specializable subset, must still
    // simulate correctly in every mode.
    class WidePass : public Model
    {
      public:
        InPort in_;
        OutPort out;
        WidePass()
            : Model(nullptr, "wide"), in_(this, "in_", 80),
              out(this, "out", 80)
        {
            auto &b = tickRtl("seq");
            b.assign(out, rd(in_) + lit(80, 1));
        }
    };
    auto top = std::make_unique<WidePass>();
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());
    if (GetParam().spec != SpecMode::None) {
        EXPECT_EQ(sim.specStats().numSpecialized, 0);
    }

    Bits wide = Bits::fromWords(80, {~uint64_t(0), 0xff});
    top->in_.setValue(wide);
    sim.cycle();
    Bits expect = wide + Bits(80, 1);
    EXPECT_EQ(top->out.value(), expect);
}

TEST_P(SimModes, SliceAssignmentMergesFields)
{
    class SliceWriter : public Model
    {
      public:
        InPort lo, hi;
        OutPort out;
        SliceWriter()
            : Model(nullptr, "slicer"), lo(this, "lo", 8),
              hi(this, "hi", 8), out(this, "out", 16)
        {
            auto &b = combinational("comb");
            b.assignSlice(out, 0, 8, rd(lo));
            b.assignSlice(out, 8, 8, rd(hi));
        }
    };
    auto top = std::make_unique<SliceWriter>();
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());
    top->lo.setValue(uint64_t(0x34));
    top->hi.setValue(uint64_t(0x12));
    sim.eval();
    EXPECT_EQ(top->out.u64(), 0x1234u);
}

TEST_P(SimModes, SpecializationStatsAreReported)
{
    auto top = std::make_unique<MuxReg>(nullptr, "top", 8, 4);
    auto elab = top->elaborate();
    SimulationTool sim(elab, GetParam());
    const SpecStats &stats = sim.specStats();
    EXPECT_EQ(stats.numBlocks, 2);
    if (GetParam().spec == SpecMode::None) {
        EXPECT_EQ(stats.numSpecialized, 0);
    } else {
        EXPECT_EQ(stats.numSpecialized, 2);
        EXPECT_GE(stats.codegenSeconds, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SimModes, ::testing::ValuesIn(allModes()),
    [](const ::testing::TestParamInfo<SimConfig> &info) {
        return modeName(info.param);
    });

// ----------------------------------------------------------------------
// Cross-mode equivalence: every mode must produce the identical cycle-
// by-cycle trace for a pseudo-random composite design.

TEST(SimEquivalence, AllModesProduceIdenticalTraces)
{
    auto run = [](const SimConfig &cfg) {
        auto top = std::make_unique<MuxReg>(nullptr, "top", 8, 4);
        auto elab = top->elaborate();
        SimulationTool sim(elab, cfg);
        std::vector<uint64_t> trace;
        uint64_t seed = 123456789;
        for (int i = 0; i < 50; ++i) {
            seed = seed * 6364136223846793005ull + 1442695040888963407ull;
            for (int p = 0; p < 4; ++p)
                top->in_[p].setValue((seed >> (8 * p)) & 0xff);
            top->sel.setValue((seed >> 33) & 0x3);
            sim.cycle();
            trace.push_back(top->out.u64());
        }
        return trace;
    };

    auto modes = allModes();
    auto golden = run(modes[0]);
    for (size_t i = 1; i < modes.size(); ++i)
        EXPECT_EQ(run(modes[i]), golden) << modeName(modes[i]);
}

TEST(SimEquivalence, EventAndStaticSchedulesAgree)
{
    for (ExecMode exec : {ExecMode::Interp, ExecMode::OptInterp}) {
        std::vector<uint64_t> traces[2];
        int t = 0;
        for (SchedMode sched : {SchedMode::Event, SchedMode::Static}) {
            auto top = std::make_unique<Counter>(nullptr, "top", 8);
            auto elab = top->elaborate();
            SimConfig cfg;
            cfg.exec = exec;
            cfg.sched = sched;
            SimulationTool sim(elab, cfg);
            top->en.setValue(uint64_t(1));
            for (int i = 0; i < 20; ++i) {
                if (i == 10)
                    top->en.setValue(uint64_t(0));
                sim.cycle();
                traces[t].push_back(top->count.u64());
            }
            ++t;
        }
        EXPECT_EQ(traces[0], traces[1]);
    }
}

TEST(SimLifecycle, AccessDetachesOnDestruction)
{
    auto top = std::make_unique<Register>(nullptr, "top", 8);
    auto elab = top->elaborate();
    {
        SimulationTool sim(elab);
        top->in_.setValue(uint64_t(1));
    }
    EXPECT_THROW(top->in_.value(), std::logic_error);
}

TEST(SimLifecycle, CycleHooksFire)
{
    auto top = std::make_unique<Register>(nullptr, "top", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    int fired = 0;
    sim.onCycleEnd([&](uint64_t) { ++fired; });
    sim.cycle(7);
    EXPECT_EQ(fired, 7);
}

} // namespace
} // namespace cmtl
