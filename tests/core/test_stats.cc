#include <gtest/gtest.h>

#include "core/stats.h"
#include "test_models.h"

namespace cmtl {
namespace {

using testmodels::Counter;
using testmodels::MuxReg;

TEST(ActivityTool, CountsTogglesOnActiveNets)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    ActivityTool activity(sim);
    top.en.setValue(uint64_t(1));
    sim.cycle(8);
    // Counting 0..8: bit0 toggles every cycle (7 observed transitions
    // after the first sample), bit1 every other...
    EXPECT_GT(activity.netToggles(top.count.netId()), 7u);
    EXPECT_EQ(activity.cycles(), 8u);
    EXPECT_GT(activity.toggleRate(), 0.0);
}

TEST(ActivityTool, IdleDesignHasNoToggles)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    ActivityTool activity(sim);
    top.en.setValue(uint64_t(0));
    sim.cycle(8);
    EXPECT_EQ(activity.netToggles(top.count.netId()), 0u);
}

TEST(ActivityTool, ResetClearsCounters)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    ActivityTool activity(sim);
    top.en.setValue(uint64_t(1));
    sim.cycle(8);
    activity.reset();
    EXPECT_EQ(activity.cycles(), 0u);
    top.en.setValue(uint64_t(0));
    sim.cycle(4);
    EXPECT_EQ(activity.netToggles(top.count.netId()), 0u);
}

TEST(ActivityTool, ModelTogglesAttributeToSubtrees)
{
    MuxReg top(nullptr, "top", 8, 4);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    ActivityTool activity(sim);
    for (int i = 0; i < 4; ++i)
        top.in_[i].setValue(uint64_t(0x10 + i * 7));
    for (int i = 0; i < 8; ++i) {
        top.sel.setValue(uint64_t(i % 4));
        sim.cycle();
    }
    uint64_t whole = activity.modelToggles(top);
    uint64_t reg_part = activity.modelToggles(top.reg_);
    EXPECT_GT(whole, 0u);
    EXPECT_GT(reg_part, 0u);
    EXPECT_LE(reg_part, whole);
    std::string report = activity.report(5);
    EXPECT_NE(report.find("toggles"), std::string::npos);
}

TEST(TextWave, RendersLevelsAndHexValues)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    TextWaveTool waves(sim, {&top.en, &top.count});
    top.en.setValue(uint64_t(1));
    sim.cycle(3);
    top.en.setValue(uint64_t(0));
    sim.cycle(2);
    std::string text = waves.render();
    // en: three high cycles then two low.
    EXPECT_NE(text.find("###__"), std::string::npos);
    // count holds its value while disabled: repeat markers appear.
    EXPECT_NE(text.find("03."), std::string::npos);
    EXPECT_NE(text.find("top.count"), std::string::npos);
}

} // namespace
} // namespace cmtl
