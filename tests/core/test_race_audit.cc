/**
 * @file
 * Tests for the static ParSim race auditor (race_audit.h): the shipped
 * partitioner's plans must prove out on the corpus at every island
 * count, and injected violations — a shared-write split across
 * islands, a dropped boundary push, a reordered superstep — must be
 * pinpointed down to the exact net and island pair.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "core/analyze.h"
#include "core/partition.h"
#include "core/race_audit.h"
#include "net/mesh.h"
#include "net/traffic.h"

namespace cmtl {
namespace {

// ------------------------------------------------------ corpus plans

TEST(RaceAudit, MeshPartitionsPassAtEveryIslandCount)
{
    net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
    auto elab = mesh.elaborate();
    for (int threads : {2, 4, 8}) {
        PartitionPlan plan = partitionDesign(*elab, threads);
        RaceAuditReport report = auditPartition(*elab, plan);
        EXPECT_TRUE(report.ok())
            << "threads=" << threads << "\n" << report.format();
        EXPECT_EQ(report.nislands, threads);
        EXPECT_GT(report.edgesChecked, 0);
        EXPECT_GT(report.pushesChecked, 0);
        EXPECT_NE(report.summary().find("PASS"), std::string::npos);
    }
}

TEST(RaceAudit, RefinedAndChunkedPlansPassOnCorpus)
{
    // Both the weight-balanced seed and the KLFM-refined plan must
    // prove every audit invariant, on every corpus design, at every
    // island count — refinement may only move whole atomic clusters,
    // so nothing it does can introduce a race.
    auto check = [](const Elaboration &elab, const char *what) {
        for (int islands : {2, 4, 8}) {
            for (bool refine : {false, true}) {
                PartitionOptions opts;
                opts.refine = refine;
                PartitionPlan plan =
                    partitionDesign(elab, islands, opts);
                RaceAuditReport report = auditPartition(elab, plan);
                EXPECT_TRUE(report.ok())
                    << what << " islands=" << islands
                    << " refine=" << refine << "\n" << report.format();
                EXPECT_LE(plan.cutTokens, plan.seedCutTokens);
            }
        }
    };
    net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
    check(*mesh.elaborate(), "mesh-rtl");
    net::MeshTrafficTop traffic("top", net::NetLevel::RTL, 64, 4, 0.2,
                                3);
    check(*traffic.elaborate(), "mesh-traffic-rtl");
}

TEST(RaceAudit, CatalogCoversAuditInvariants)
{
    std::set<std::string> ids;
    for (const AnalyzeCheck &check : analyzeCheckCatalog())
        ids.insert(check.id);
    for (const char *id :
         {"audit-block-coverage", "audit-shared-write",
          "audit-ownership", "audit-push-coverage",
          "audit-superstep-order", "audit-boundary",
          "audit-array-local"}) {
        EXPECT_TRUE(ids.count(id)) << "missing catalog entry " << id;
    }
}

// --------------------------------------------- injected: shared write

/** Two sequential blocks that both write q — an illegal design the
 *  partitioner would co-locate; the hand-built plan splits them. */
struct SharedWriteTop : Model
{
    InPort a, b;
    OutPort q;

    SharedWriteTop()
        : Model(nullptr, "top"), a(this, "a", 8), b(this, "b", 8),
          q(this, "q", 8)
    {
        auto &s1 = tickRtl("t1");
        s1.assign(q, rd(a));
        auto &s2 = tickRtl("t2");
        s2.assign(q, rd(b));
    }
};

TEST(RaceAudit, SplitSharedWriteIsPinpointed)
{
    SharedWriteTop top;
    auto elab = top.elaborate();
    const int ntokens = static_cast<int>(elab->nets.size() +
                                         elab->arrays.size());

    // Hand-build a two-island plan that puts one writer of q on each
    // island — exactly the race the partitioner's clustering forbids.
    int b1 = -1, b2 = -1;
    for (size_t i = 0; i < elab->blocks.size(); ++i) {
        if (elab->blocks[i].name == "top.t1")
            b1 = static_cast<int>(i);
        if (elab->blocks[i].name == "top.t2")
            b2 = static_cast<int>(i);
    }
    ASSERT_GE(b1, 0);
    ASSERT_GE(b2, 0);

    PartitionPlan plan;
    plan.nislands = 2;
    plan.islands.resize(2);
    plan.islands[0].tickBlocks = {b1};
    plan.islands[1].tickBlocks = {b2};
    plan.ownerOf.assign(ntokens, kExternalIsland);
    plan.readerIslands.assign(ntokens, {});
    int q = top.q.netId();
    plan.ownerOf[q] = 0;
    plan.islands[0].ownedTokens = {q};
    plan.islands[0].flopNets = {q};
    // Boundary pushes for what each island actually reads.
    for (int i = 0; i < 2; ++i) {
        for (int blk : plan.islands[i].tickBlocks)
            for (int t : elab->blocks[blk].reads)
                if (t >= 0 && t < ntokens)
                    plan.readerIslands[t].push_back(i);
    }

    RaceAuditReport report = auditPartition(*elab, plan);
    ASSERT_FALSE(report.ok());
    const RaceAuditIssue *found = nullptr;
    for (const auto &issue : report.issues)
        if (issue.invariant == "audit-shared-write")
            found = &issue;
    ASSERT_NE(found, nullptr) << report.format();
    // The finding names the exact net and the offending island pair.
    EXPECT_EQ(found->token, q);
    EXPECT_EQ(found->path, "top.q");
    EXPECT_EQ(std::min(found->island_a, found->island_b), 0);
    EXPECT_EQ(std::max(found->island_a, found->island_b), 1);
    EXPECT_NE(found->message.find("top.q"), std::string::npos);

    // toLintIssues feeds the shared severity/suppression machinery.
    auto lint = report.toLintIssues();
    ASSERT_FALSE(lint.empty());
    for (const auto &issue : lint)
        EXPECT_EQ(issue.severity, LintSeverity::Error);
}

// ------------------------------------------- injected: dropped push

TEST(RaceAudit, DroppedBoundaryPushIsPinpointed)
{
    net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
    auto elab = mesh.elaborate();
    PartitionPlan plan = partitionDesign(*elab, 2);
    ASSERT_TRUE(auditPartition(*elab, plan).ok());

    // Drop one real boundary push: a token with a cross-island reader.
    int token = -1, victim = -1;
    for (size_t t = 0; t < plan.readerIslands.size() && token < 0; ++t) {
        if (plan.ownerOf[t] < 0)
            continue;
        for (int isl : plan.readerIslands[t]) {
            if (isl != plan.ownerOf[t]) {
                token = static_cast<int>(t);
                victim = isl;
                break;
            }
        }
    }
    ASSERT_GE(token, 0) << "no cross-island read in the plan";
    auto &readers = plan.readerIslands[token];
    readers.erase(std::remove(readers.begin(), readers.end(), victim),
                  readers.end());

    RaceAuditReport report = auditPartition(*elab, plan);
    ASSERT_FALSE(report.ok());
    const RaceAuditIssue *found = nullptr;
    for (const auto &issue : report.issues)
        if (issue.invariant == "audit-push-coverage" &&
            issue.token == token)
            found = &issue;
    ASSERT_NE(found, nullptr) << report.format();
    EXPECT_EQ(found->island_b, victim);
    EXPECT_NE(found->message.find("never pushes"), std::string::npos);
}

// -------------------------------------- injected: superstep disorder

TEST(RaceAudit, ReorderedCombScheduleIsPinpointed)
{
    net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
    auto elab = mesh.elaborate();
    PartitionPlan plan = partitionDesign(*elab, 2);
    ASSERT_TRUE(auditPartition(*elab, plan).ok());

    // Find an intra-island comb dependency (writer before reader in
    // the island schedule) and swap the two slots.
    int island = -1;
    size_t pw = 0, pr = 0;
    for (int i = 0; i < plan.nislands && island < 0; ++i) {
        const auto &cb = plan.islands[i].combBlocks;
        for (size_t w = 0; w < cb.size() && island < 0; ++w) {
            const auto &writes = elab->blocks[cb[w]].writes;
            for (size_t r = w + 1; r < cb.size() && island < 0; ++r) {
                const auto &reads = elab->blocks[cb[r]].reads;
                for (int t : writes) {
                    if (std::find(reads.begin(), reads.end(), t) !=
                        reads.end()) {
                        island = i;
                        pw = w;
                        pr = r;
                        break;
                    }
                }
            }
        }
    }
    ASSERT_GE(island, 0) << "no intra-island comb chain found";
    auto &isl = plan.islands[island];
    std::swap(isl.combBlocks[pw], isl.combBlocks[pr]);
    std::swap(isl.combLevels[pw], isl.combLevels[pr]);

    RaceAuditReport report = auditPartition(*elab, plan);
    ASSERT_FALSE(report.ok());
    bool found = false;
    for (const auto &issue : report.issues) {
        if (issue.invariant == "audit-superstep-order") {
            found = true;
            EXPECT_EQ(issue.island_a, island);
        }
    }
    EXPECT_TRUE(found) << report.format();
}

// -------------------------------------- injected: misplaced lambda

TEST(RaceAudit, LambdaTickOnAnIslandIsRejected)
{
    auto traffic = std::make_unique<net::MeshTrafficTop>(
        "top", net::NetLevel::RTL, 4, 4, 0.25, 7);
    auto elab = traffic->elaborate();
    PartitionPlan plan = partitionDesign(*elab, 2);
    ASSERT_TRUE(auditPartition(*elab, plan).ok());
    ASSERT_FALSE(plan.lambdaTicks.empty());

    // Move a host lambda (undeclared effects) onto a worker island.
    int moved = plan.lambdaTicks.back();
    plan.lambdaTicks.pop_back();
    plan.islands[0].tickBlocks.push_back(moved);

    RaceAuditReport report = auditPartition(*elab, plan);
    ASSERT_FALSE(report.ok());
    bool found = false;
    for (const auto &issue : report.issues)
        if (issue.invariant == "audit-block-coverage" &&
            issue.message.find("lambda") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << report.format();
}

} // namespace
} // namespace cmtl
