#include <gtest/gtest.h>

#include <random>

#include "core/lint.h"
#include "core/sim.h"
#include "core/translate.h"
#include "test_models.h"

namespace cmtl {
namespace {

/** A tiny register file: sync write port, two async read ports. */
class RegFile : public Model
{
  public:
    InPort waddr, wdata, wen;
    InPort raddr0, raddr1;
    OutPort rdata0, rdata1;
    MemArray regs;

    RegFile(int nbits, int depth)
        : Model(nullptr, "rf"), waddr(this, "waddr", bitsFor(depth)),
          wdata(this, "wdata", nbits), wen(this, "wen", 1),
          raddr0(this, "raddr0", bitsFor(depth)),
          raddr1(this, "raddr1", bitsFor(depth)),
          rdata0(this, "rdata0", nbits), rdata1(this, "rdata1", nbits),
          regs(this, "regs", nbits, depth)
    {
        auto &t = tickRtl("write_port");
        t.if_(rd(wen),
              [&] { t.writeArray(regs, rd(waddr), rd(wdata)); });
        auto &c = combinational("read_ports");
        c.assign(rdata0, aread(regs, rd(raddr0)));
        c.assign(rdata1, aread(regs, rd(raddr1)));
    }
};

TEST(MemArrayBasics, RejectsBadShapes)
{
    testmodels::Register owner(nullptr, "m", 8);
    EXPECT_THROW(MemArray(&owner, "a", 8, 3), std::invalid_argument);
    EXPECT_THROW(MemArray(&owner, "a", 8, 0), std::invalid_argument);
    EXPECT_THROW(MemArray(&owner, "a", 80, 4), std::invalid_argument);
    MemArray good(&owner, "a", 8, 4);
    EXPECT_EQ(good.indexMask(), 3u);
}

TEST(MemArrayBasics, WriteOnlyInSequentialBlocks)
{
    class BadComb : public Model
    {
      public:
        MemArray mem;
        BadComb() : Model(nullptr, "bad"), mem(this, "mem", 8, 4)
        {
            auto &c = combinational("comb");
            EXPECT_THROW(c.writeArray(mem, lit(2, 0), lit(8, 1)),
                         std::logic_error);
        }
    };
    BadComb bad;
}

class ArrayModes : public ::testing::TestWithParam<SimConfig>
{};

TEST_P(ArrayModes, RegFileWritesThenReads)
{
    RegFile rf(32, 16);
    auto elab = rf.elaborate();
    SimulationTool sim(elab, GetParam());

    // Write r3 = 111, r7 = 222.
    rf.wen.setValue(uint64_t(1));
    rf.waddr.setValue(uint64_t(3));
    rf.wdata.setValue(uint64_t(111));
    sim.cycle();
    rf.waddr.setValue(uint64_t(7));
    rf.wdata.setValue(uint64_t(222));
    sim.cycle();
    rf.wen.setValue(uint64_t(0));
    rf.raddr0.setValue(uint64_t(3));
    rf.raddr1.setValue(uint64_t(7));
    sim.eval();
    EXPECT_EQ(rf.rdata0.u64(), 111u);
    EXPECT_EQ(rf.rdata1.u64(), 222u);

    // Unwritten entries read zero.
    rf.raddr0.setValue(uint64_t(5));
    sim.eval();
    EXPECT_EQ(rf.rdata0.u64(), 0u);
}

TEST_P(ArrayModes, WriteEnableGates)
{
    RegFile rf(16, 8);
    auto elab = rf.elaborate();
    SimulationTool sim(elab, GetParam());
    rf.wen.setValue(uint64_t(0));
    rf.waddr.setValue(uint64_t(2));
    rf.wdata.setValue(uint64_t(99));
    sim.cycle(2);
    rf.raddr0.setValue(uint64_t(2));
    sim.eval();
    EXPECT_EQ(rf.rdata0.u64(), 0u);
}

TEST_P(ArrayModes, HostAccessRoundTrips)
{
    RegFile rf(32, 16);
    auto elab = rf.elaborate();
    SimulationTool sim(elab, GetParam());
    sim.writeArray(rf.regs, 9, Bits(32, 0x1234));
    rf.raddr0.setValue(uint64_t(9));
    sim.eval();
    EXPECT_EQ(rf.rdata0.u64(), 0x1234u);
    EXPECT_EQ(sim.readArray(rf.regs, 9).toUint64(), 0x1234u);
}

TEST_P(ArrayModes, RandomizedAgainstReferenceModel)
{
    RegFile rf(16, 32);
    auto elab = rf.elaborate();
    SimulationTool sim(elab, GetParam());
    std::mt19937_64 rng(99);
    uint16_t ref[32] = {};
    for (int i = 0; i < 200; ++i) {
        uint64_t wa = rng() % 32, ra = rng() % 32;
        uint64_t wd = rng() & 0xffff;
        bool we = rng() & 1;
        rf.wen.setValue(uint64_t(we));
        rf.waddr.setValue(wa);
        rf.wdata.setValue(wd);
        rf.raddr0.setValue(ra);
        sim.cycle();
        if (we)
            ref[wa] = static_cast<uint16_t>(wd);
        sim.eval();
        EXPECT_EQ(rf.rdata0.u64(), ref[ra]) << "iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ArrayModes, ::testing::ValuesIn(testmodels::allModes()),
    [](const ::testing::TestParamInfo<SimConfig> &info) {
        return testmodels::modeName(info.param);
    });

TEST(MemArrayTools, TranslatesToVerilogMemory)
{
    RegFile rf(32, 16);
    auto elab = rf.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("reg  [31:0] regs [0:15];"), std::string::npos);
    EXPECT_NE(v.find("regs[waddr] <= wdata;"), std::string::npos);
    EXPECT_NE(v.find("rdata0 = regs[raddr0];"), std::string::npos);
}

TEST(MemArrayTools, LintFlagsMultipleWriters)
{
    class TwoWriters : public Model
    {
      public:
        MemArray mem;
        InPort a;
        TwoWriters()
            : Model(nullptr, "tw"), mem(this, "mem", 8, 4),
              a(this, "a", 8)
        {
            auto &t1 = tickRtl("w1");
            t1.writeArray(mem, lit(2, 0), rd(a));
            auto &t2 = tickRtl("w2");
            t2.writeArray(mem, lit(2, 1), rd(a));
        }
    };
    TwoWriters tw;
    auto elab = tw.elaborate();
    auto issues = LintTool().run(*elab);
    bool found = false;
    for (const auto &issue : issues)
        found |= issue.check == "multiple-array-writers";
    EXPECT_TRUE(found);
}

TEST(MemArrayTools, SpecializableWithArrays)
{
    RegFile rf(32, 16);
    auto elab = rf.elaborate();
    SimConfig cfg;
    cfg.spec = SpecMode::Bytecode;
    SimulationTool sim(elab, cfg);
    EXPECT_EQ(sim.specStats().numSpecialized, 2);
}

} // namespace
} // namespace cmtl
