#include <gtest/gtest.h>

#include "core/model.h"
#include "test_models.h"

namespace cmtl {
namespace {

using testmodels::Counter;
using testmodels::Mux;
using testmodels::MuxReg;
using testmodels::Register;

TEST(ModelHierarchy, NamesAreHierarchical)
{
    MuxReg top(nullptr, "top");
    EXPECT_EQ(top.fullName(), "top");
    EXPECT_EQ(top.reg_.fullName(), "top.reg_");
    EXPECT_EQ(top.reg_.out.fullName(), "top.reg_.out");
    EXPECT_EQ(top.mux_.instName(), "mux");
    ASSERT_EQ(top.children().size(), 2u);
    EXPECT_EQ(top.children()[0], &top.reg_);
}

TEST(ModelHierarchy, ConnectRejectsWidthMismatch)
{
    Register a(nullptr, "a", 8);
    EXPECT_THROW(a.connect(a.in_, a.reset), std::invalid_argument);
}

TEST(ModelHierarchy, SignalWidthMustBePositive)
{
    Register a(nullptr, "a", 8);
    EXPECT_THROW(Wire(&a, "w", 0), std::invalid_argument);
}

TEST(Elaboration, ConnectedSignalsShareNets)
{
    MuxReg top(nullptr, "top");
    auto elab = top.elaborate();
    EXPECT_EQ(top.sel.netId(), top.mux_.sel.netId());
    EXPECT_EQ(top.mux_.out.netId(), top.reg_.in_.netId());
    EXPECT_EQ(top.reg_.out.netId(), top.out.netId());
    EXPECT_NE(top.sel.netId(), top.out.netId());
    for (size_t i = 0; i < top.in_.size(); ++i)
        EXPECT_EQ(top.in_[i].netId(), top.mux_.in_[i].netId());
}

TEST(Elaboration, ImplicitResetIsChained)
{
    MuxReg top(nullptr, "top");
    auto elab = top.elaborate();
    EXPECT_EQ(top.reset.netId(), top.reg_.reset.netId());
    EXPECT_EQ(top.reset.netId(), top.mux_.reset.netId());
}

TEST(Elaboration, NetNamesPreferShallowSignals)
{
    MuxReg top(nullptr, "top");
    auto elab = top.elaborate();
    EXPECT_EQ(elab->nets[top.out.netId()].name, "top.out");
    EXPECT_EQ(elab->nets[top.sel.netId()].name, "top.sel");
}

TEST(Elaboration, MustBeCalledOnTop)
{
    MuxReg top(nullptr, "top");
    EXPECT_THROW(top.reg_.elaborate(), std::logic_error);
}

TEST(Elaboration, BlockKindsAndAccessSets)
{
    MuxReg top(nullptr, "top");
    auto elab = top.elaborate();
    ASSERT_EQ(elab->blocks.size(), 2u); // register tick + mux comb

    const ElabBlock *tick = nullptr;
    const ElabBlock *comb = nullptr;
    for (const auto &blk : elab->blocks) {
        if (blk.kind == BlockKind::TickIr)
            tick = &blk;
        if (blk.kind == BlockKind::CombIr)
            comb = &blk;
    }
    ASSERT_NE(tick, nullptr);
    ASSERT_NE(comb, nullptr);

    // The register tick reads the mux output net, writes the out net.
    EXPECT_EQ(tick->reads,
              std::vector<int>{top.reg_.in_.netId()});
    EXPECT_EQ(tick->writes, std::vector<int>{top.out.netId()});
    EXPECT_TRUE(elab->nets[top.out.netId()].floppedStatic);
    EXPECT_FALSE(elab->nets[top.sel.netId()].floppedStatic);

    // The mux comb block reads sel + all inputs, writes the reg input.
    EXPECT_EQ(comb->writes, std::vector<int>{top.reg_.in_.netId()});
    EXPECT_EQ(comb->reads.size(), top.in_.size() + 1);
}

TEST(Elaboration, TopoOrderPutsWritersFirst)
{
    // comb chain: a -> b -> c through two comb blocks.
    class Chain : public Model
    {
      public:
        InPort a;
        Wire b;
        OutPort c;
        Chain()
            : Model(nullptr, "chain"), a(this, "a", 8), b(this, "b", 8),
              c(this, "c", 8)
        {
            // Declared consumer-first to make the sort do real work.
            auto &b2 = combinational("second");
            b2.assign(c, rd(b) + 1);
            auto &b1 = combinational("first");
            b1.assign(b, rd(a) + 1);
        }
    };
    Chain chain;
    auto elab = chain.elaborate();
    ASSERT_EQ(elab->combOrder.size(), 2u);
    EXPECT_EQ(elab->blocks[elab->combOrder[0]].name, "chain.first");
    EXPECT_EQ(elab->blocks[elab->combOrder[1]].name, "chain.second");
    EXPECT_FALSE(elab->hasCombCycle);
}

TEST(Elaboration, CombCycleIsDetected)
{
    class Loop : public Model
    {
      public:
        Wire a, b;
        Loop()
            : Model(nullptr, "loop"), a(this, "a", 1), b(this, "b", 1)
        {
            auto &b1 = combinational("fwd");
            b1.assign(b, ~rd(a));
            auto &b2 = combinational("bwd");
            b2.assign(a, ~rd(b));
        }
    };
    Loop loop;
    auto elab = loop.elaborate();
    EXPECT_TRUE(elab->hasCombCycle);
    SimConfig cfg;
    cfg.exec = ExecMode::OptInterp; // static scheduling
    EXPECT_THROW(SimulationTool(elab, cfg), std::logic_error);
}

TEST(Elaboration, LambdaBlocksCarryDeclaredSensitivity)
{
    class FlThing : public Model
    {
      public:
        InPort a;
        OutPort b;
        FlThing()
            : Model(nullptr, "fl"), a(this, "a", 8), b(this, "b", 8)
        {
            combLambda("double", [this] { b.setValue(a.u64() * 2); },
                       {&a}, {&b});
            tickFl("noop", [] {});
        }
    };
    FlThing fl;
    auto elab = fl.elaborate();
    ASSERT_EQ(elab->blocks.size(), 2u);
    const ElabBlock &comb = elab->blocks[0];
    EXPECT_EQ(comb.kind, BlockKind::CombLambda);
    EXPECT_EQ(comb.reads, std::vector<int>{fl.a.netId()});
    EXPECT_EQ(comb.writes, std::vector<int>{fl.b.netId()});
    EXPECT_EQ(elab->blocks[1].kind, BlockKind::TickFl);
    EXPECT_EQ(elab->tickOrder.size(), 1u);
}

TEST(Elaboration, ReadWriteOutsideSimulationThrows)
{
    Register reg(nullptr, "reg", 8);
    auto elab = reg.elaborate();
    EXPECT_THROW(reg.in_.value(), std::logic_error);
    EXPECT_THROW(reg.in_.setValue(uint64_t(1)), std::logic_error);
    EXPECT_THROW(reg.in_.setNext(uint64_t(1)), std::logic_error);
}

TEST(Elaboration, NetReadersIndexComdBlocks)
{
    MuxReg top(nullptr, "top");
    auto elab = top.elaborate();
    // The sel net is read by exactly one comb block (the mux).
    const auto &readers = elab->netReaders[top.sel.netId()];
    ASSERT_EQ(readers.size(), 1u);
    EXPECT_EQ(elab->blocks[readers[0]].kind, BlockKind::CombIr);
}

} // namespace
} // namespace cmtl
