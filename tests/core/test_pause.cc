/**
 * Cooperative pause: Simulator::requestPause() stops runUntil() at the
 * next cycle boundary on both kernels — the sequential SimulationTool
 * and the BSP-parallel ParSimulationTool — leaving the simulator in a
 * snapSave()-consistent state. The contract under test: the pause is
 * honored exactly at a boundary (never mid-cycle), consumed by the
 * returning runUntil() (the next call resumes cleanly), requestable
 * from another thread, and composable with SimSnap — pause, snapshot,
 * restore into a fresh simulator, finish, and the final digest equals
 * the uninterrupted run's. This is the primitive SimServer's job
 * preemption is built from.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/psim.h"
#include "core/sim.h"
#include "core/snap.h"
#include "net/traffic.h"
#include "test_models.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

std::unique_ptr<MeshTrafficTop>
makeMesh()
{
    return std::make_unique<MeshTrafficTop>("top", NetLevel::CL, 16, 4,
                                            0.30, 7);
}

uint64_t
uninterruptedDigest(int threads, uint64_t cycles)
{
    auto top = makeMesh();
    SimConfig cfg;
    cfg.threads = threads;
    auto sim = makeSimulator(top->elaborate(), cfg);
    EXPECT_TRUE(sim->runUntil(cycles));
    return stateDigest(*sim);
}

class PauseKernels : public ::testing::TestWithParam<int>
{
};

// A pause requested from a cycle hook lands exactly at that cycle's
// boundary, is consumed, and the resumed run matches the
// uninterrupted digest.
TEST_P(PauseKernels, PauseAtBoundaryThenResume)
{
    int threads = GetParam();
    auto top = makeMesh();
    SimConfig cfg;
    cfg.threads = threads;
    auto sim = makeSimulator(top->elaborate(), cfg);

    Simulator *raw = sim.get();
    sim->onCycleEnd([raw](uint64_t cycle) {
        if (cycle == 300)
            raw->requestPause();
    });

    EXPECT_FALSE(sim->runUntil(1000));
    EXPECT_EQ(sim->numCycles(), 300u);
    EXPECT_FALSE(sim->pauseRequested()); // consumed by runUntil

    EXPECT_TRUE(sim->runUntil(1000));
    EXPECT_EQ(sim->numCycles(), 1000u);
    EXPECT_EQ(stateDigest(*sim), uninterruptedDigest(threads, 1000));
}

// runUntil with the target already reached returns true untouched,
// and a pending pause outlives such a no-op call.
TEST_P(PauseKernels, PauseBeforeRun)
{
    auto top = makeMesh();
    SimConfig cfg;
    cfg.threads = GetParam();
    auto sim = makeSimulator(top->elaborate(), cfg);

    sim->requestPause();
    EXPECT_TRUE(sim->runUntil(0));      // nothing to do
    EXPECT_TRUE(sim->pauseRequested()); // still pending
    EXPECT_FALSE(sim->runUntil(100));   // honored before cycle 1
    EXPECT_EQ(sim->numCycles(), 0u);
    EXPECT_TRUE(sim->runUntil(100));
    EXPECT_EQ(sim->numCycles(), 100u);
}

// A pause requested from another thread interrupts the run at some
// cycle boundary strictly before the target.
TEST_P(PauseKernels, CrossThreadPause)
{
    auto top = makeMesh();
    SimConfig cfg;
    cfg.threads = GetParam();
    auto sim = makeSimulator(top->elaborate(), cfg);

    // Far enough that the run outlives the pausing thread's nap.
    const uint64_t target = 400000;
    std::thread pauser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        sim->requestPause();
    });
    bool completed = sim->runUntil(target);
    pauser.join();
    if (!completed) {
        EXPECT_LT(sim->numCycles(), target);
        // The simulator is at a clean boundary: resumable as usual.
        uint64_t at = sim->numCycles();
        EXPECT_TRUE(sim->runUntil(at + 10));
        EXPECT_EQ(sim->numCycles(), at + 10);
    }
    // (If the run won the race there is nothing further to assert.)
}

// Pause -> snapSave -> restore into a *fresh* simulator -> finish:
// bit-identical to never having paused. The server's preemption path.
TEST_P(PauseKernels, PauseSnapshotResumeDigest)
{
    int threads = GetParam();
    SimConfig cfg;
    cfg.threads = threads;

    auto top = makeMesh();
    auto sim = makeSimulator(top->elaborate(), cfg);
    Simulator *raw = sim.get();
    sim->onCycleEnd([raw](uint64_t cycle) {
        if (cycle == 250)
            raw->requestPause();
    });
    ASSERT_FALSE(sim->runUntil(800));
    ASSERT_EQ(sim->numCycles(), 250u);
    SimSnapshot snap = snapSave(*sim);
    sim.reset();
    top.reset(); // the victim is gone entirely, as under preemption

    auto top2 = makeMesh();
    auto sim2 = makeSimulator(top2->elaborate(), cfg);
    snapRestore(*sim2, snap);
    EXPECT_EQ(sim2->numCycles(), 250u);
    EXPECT_TRUE(sim2->runUntil(800));
    EXPECT_EQ(stateDigest(*sim2), uninterruptedDigest(threads, 800));
}

INSTANTIATE_TEST_SUITE_P(Kernels, PauseKernels, ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<int> &info) {
                             return info.param == 1 ? "Sequential"
                                                    : "ParSim";
                         });

// The tiny-model path: pausing a Counter under the plain
// SimulationTool, driving cycle() directly after a refused runUntil.
TEST(Pause, DirectCycleIgnoresPause)
{
    auto top = std::make_unique<testmodels::Counter>(nullptr, "ctr", 8);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    sim.requestPause();
    sim.cycle(5); // cycle() is not runUntil: no pause semantics
    EXPECT_EQ(sim.numCycles(), 5u);
    EXPECT_TRUE(sim.pauseRequested());
    sim.clearPauseRequest();
    EXPECT_FALSE(sim.pauseRequested());
}

} // namespace
} // namespace cmtl
