#include <gtest/gtest.h>

#include <random>

#include "core/bits.h"

namespace cmtl {
namespace {

TEST(BitsBasics, DefaultIsOneBitZero)
{
    Bits b;
    EXPECT_EQ(b.nbits(), 1);
    EXPECT_FALSE(b.any());
    EXPECT_EQ(b.toUint64(), 0u);
}

TEST(BitsBasics, ConstructionTruncates)
{
    Bits b(4, 0x1f);
    EXPECT_EQ(b.toUint64(), 0xfu);
    Bits c(8, 0x100);
    EXPECT_EQ(c.toUint64(), 0u);
    Bits d(64, ~uint64_t(0));
    EXPECT_EQ(d.toUint64(), ~uint64_t(0));
}

TEST(BitsBasics, InvalidWidthThrows)
{
    EXPECT_THROW(Bits(0), std::invalid_argument);
    EXPECT_THROW(Bits(-3), std::invalid_argument);
}

TEST(BitsBasics, WideStorage)
{
    Bits b = Bits::fromWords(128, {0x1111222233334444ull,
                                   0x5555666677778888ull});
    EXPECT_EQ(b.nwords(), 2);
    EXPECT_EQ(b.word(0), 0x1111222233334444ull);
    EXPECT_EQ(b.word(1), 0x5555666677778888ull);
    EXPECT_EQ(b.word(2), 0u); // beyond width reads as zero
    EXPECT_FALSE(b.fitsUint64());
}

TEST(BitsBasics, WideTruncatesTopWord)
{
    Bits b = Bits::fromWords(65, {0, ~uint64_t(0)});
    EXPECT_EQ(b.word(1), 1u);
}

TEST(BitsBasics, FromStringHex)
{
    EXPECT_EQ(Bits::fromString(16, "0xabcd").toUint64(), 0xabcdu);
    EXPECT_EQ(Bits::fromString(16, "0xAB_CD").toUint64(), 0xabcdu);
    EXPECT_EQ(Bits::fromString(8, "0b1010_0101").toUint64(), 0xa5u);
    EXPECT_EQ(Bits::fromString(32, "1234").toUint64(), 1234u);
    EXPECT_THROW(Bits::fromString(8, "0xzz"), std::invalid_argument);
}

TEST(BitsBasics, ClogAndBitsFor)
{
    EXPECT_EQ(clog2(1), 1);
    EXPECT_EQ(clog2(2), 2);
    EXPECT_EQ(clog2(255), 8);
    EXPECT_EQ(bitsFor(2), 1);
    EXPECT_EQ(bitsFor(4), 2);
    EXPECT_EQ(bitsFor(5), 3);
    EXPECT_EQ(bitsFor(64), 6);
}

TEST(BitsArith, ModuloAddition)
{
    Bits a(8, 200), b(8, 100);
    EXPECT_EQ((a + b).toUint64(), (200 + 100) % 256u);
    EXPECT_EQ((a + b).nbits(), 8);
}

TEST(BitsArith, MixedWidthZeroExtends)
{
    Bits a(4, 0xf), b(8, 0x10);
    Bits sum = a + b;
    EXPECT_EQ(sum.nbits(), 8);
    EXPECT_EQ(sum.toUint64(), 0x1fu);
}

TEST(BitsArith, SubtractionWraps)
{
    Bits a(8, 5), b(8, 10);
    EXPECT_EQ((a - b).toUint64(), 251u);
}

TEST(BitsArith, Multiplication)
{
    Bits a(8, 20), b(8, 30);
    EXPECT_EQ((a * b).toUint64(), 600 % 256u);
    Bits c(16, 300), d(16, 300);
    EXPECT_EQ((c * d).toUint64(), 90000 % 65536u);
}

TEST(BitsArith, DivisionAndModulo)
{
    Bits a(16, 1000), b(16, 7);
    EXPECT_EQ((a / b).toUint64(), 142u);
    EXPECT_EQ((a % b).toUint64(), 6u);
    EXPECT_THROW(a / Bits(16, 0), std::domain_error);
    EXPECT_THROW(a % Bits(16, 0), std::domain_error);
}

TEST(BitsArith, WideAdditionCarries)
{
    Bits a = Bits::fromWords(128, {~uint64_t(0), 0});
    Bits one(128, 1);
    Bits sum = a + one;
    EXPECT_EQ(sum.word(0), 0u);
    EXPECT_EQ(sum.word(1), 1u);
}

TEST(BitsArith, WideSubtractionBorrows)
{
    Bits a = Bits::fromWords(128, {0, 1});
    Bits one(128, 1);
    Bits diff = a - one;
    EXPECT_EQ(diff.word(0), ~uint64_t(0));
    EXPECT_EQ(diff.word(1), 0u);
}

TEST(BitsArith, WideMultiplicationMatches128BitReference)
{
    std::mt19937_64 rng(7);
    for (int i = 0; i < 200; ++i) {
        uint64_t x = rng(), y = rng();
        unsigned __int128 ref =
            static_cast<unsigned __int128>(x) * y;
        Bits a(128, 0), b(128, 0);
        a.setSlice(0, Bits(64, x));
        b.setSlice(0, Bits(64, y));
        Bits prod = a * b;
        EXPECT_EQ(prod.word(0), static_cast<uint64_t>(ref));
        EXPECT_EQ(prod.word(1), static_cast<uint64_t>(ref >> 64));
    }
}

TEST(BitsArith, WideDivisionMatchesNarrow)
{
    std::mt19937_64 rng(11);
    for (int i = 0; i < 50; ++i) {
        uint64_t x = rng() >> 8, y = (rng() >> 40) | 1;
        Bits a = Bits::fromWords(96, {x, 0});
        Bits b = Bits::fromWords(96, {y, 0});
        // Push through the wide path by making values non-64-bit.
        Bits wide_x = a.shl(20);
        Bits wide_y = b.shl(20);
        EXPECT_EQ((wide_x / wide_y).toUint64(), x / y) << x << "/" << y;
        EXPECT_EQ((wide_x % wide_y).shr(20).toUint64(), x % y);
    }
}

TEST(BitsLogic, BitwiseOps)
{
    Bits a(8, 0xf0), b(8, 0xaa);
    EXPECT_EQ((a & b).toUint64(), 0xa0u);
    EXPECT_EQ((a | b).toUint64(), 0xfau);
    EXPECT_EQ((a ^ b).toUint64(), 0x5au);
    EXPECT_EQ((~a).toUint64(), 0x0fu);
}

TEST(BitsLogic, Shifts)
{
    Bits a(8, 0x81);
    EXPECT_EQ(a.shl(1).toUint64(), 0x02u);
    EXPECT_EQ(a.shr(1).toUint64(), 0x40u);
    EXPECT_EQ((a << Bits(4, 3)).toUint64(), 0x08u);
    EXPECT_EQ((a >> Bits(4, 3)).toUint64(), 0x10u);
    EXPECT_EQ((a << Bits(8, 200)).toUint64(), 0u);
    EXPECT_EQ((a >> Bits(8, 200)).toUint64(), 0u);
}

TEST(BitsLogic, ArithmeticShiftRight)
{
    Bits a(8, 0x80);
    EXPECT_EQ(a.sra(3).toUint64(), 0xf0u);
    Bits b(8, 0x40);
    EXPECT_EQ(b.sra(3).toUint64(), 0x08u);
}

TEST(BitsLogic, WideShiftsCrossWords)
{
    Bits a = Bits::fromWords(128, {0x8000000000000001ull, 0});
    Bits l = a.shl(64);
    EXPECT_EQ(l.word(0), 0u);
    EXPECT_EQ(l.word(1), 0x8000000000000001ull);
    Bits l4 = a.shl(4);
    EXPECT_EQ(l4.word(0), 0x10ull);
    EXPECT_EQ(l4.word(1), 0x8ull);
    Bits r = l4.shr(4);
    EXPECT_EQ(r.word(0), a.word(0));
    EXPECT_EQ(r.word(1), 0u);
}

TEST(BitsCompare, Unsigned)
{
    EXPECT_TRUE(Bits(8, 5) < Bits(8, 6));
    EXPECT_TRUE(Bits(8, 5) <= Bits(8, 5));
    EXPECT_TRUE(Bits(8, 7) > Bits(8, 6));
    EXPECT_TRUE(Bits(8, 7) >= Bits(8, 7));
    EXPECT_TRUE(Bits(8, 7) == Bits(16, 7)); // width-agnostic equality
    EXPECT_TRUE(Bits(8, 7) != Bits(8, 8));
}

TEST(BitsCompare, AgainstIntegers)
{
    EXPECT_TRUE(Bits(8, 255) == 255u);
    EXPECT_FALSE(Bits(8, 255) == 256u); // value doesn't fit in 8 bits
    EXPECT_TRUE(Bits(4, 0) == 0u);
}

TEST(BitsCompare, Signed)
{
    EXPECT_TRUE(Bits::slt(Bits(8, 0xff), Bits(8, 1))); // -1 < 1
    EXPECT_FALSE(Bits::slt(Bits(8, 1), Bits(8, 0xff)));
    EXPECT_EQ(Bits(8, 0xff).toInt64(), -1);
    EXPECT_EQ(Bits(8, 0x7f).toInt64(), 127);
}

TEST(BitsSlice, BasicSliceAndSet)
{
    Bits b(16, 0xabcd);
    EXPECT_EQ(b.slice(0, 4).toUint64(), 0xdu);
    EXPECT_EQ(b.slice(4, 8).toUint64(), 0xbcu);
    EXPECT_EQ(b(15, 12).toUint64(), 0xau);
    b.setSlice(4, Bits(8, 0x12));
    EXPECT_EQ(b.toUint64(), 0xa12du);
}

TEST(BitsSlice, CrossWordSlices)
{
    Bits b = Bits::fromWords(128, {0xfedcba9876543210ull,
                                   0x0123456789abcdefull});
    EXPECT_EQ(b.slice(60, 8).toUint64(), 0xffu);
    EXPECT_EQ(b.slice(64, 64).toUint64(), 0x0123456789abcdefull);
    EXPECT_EQ(b.slice(32, 64).toUint64(), 0x89abcdeffedcba98ull);
}

TEST(BitsSlice, BitAccess)
{
    Bits b(8, 0);
    b.setBit(3, true);
    EXPECT_TRUE(b.bit(3));
    EXPECT_EQ(b.toUint64(), 8u);
    b.setBit(3, false);
    EXPECT_FALSE(b.any());
}

TEST(BitsExtend, ZextSext)
{
    Bits b(4, 0x9);
    EXPECT_EQ(b.zext(8).toUint64(), 0x09u);
    EXPECT_EQ(b.sext(8).toUint64(), 0xf9u);
    EXPECT_EQ(Bits(4, 0x5).sext(8).toUint64(), 0x05u);
    // Shrinking truncates.
    EXPECT_EQ(Bits(8, 0xab).zext(4).toUint64(), 0xbu);
}

TEST(BitsReduce, Reductions)
{
    EXPECT_EQ(Bits(8, 0).reduceOr().toUint64(), 0u);
    EXPECT_EQ(Bits(8, 4).reduceOr().toUint64(), 1u);
    EXPECT_EQ(Bits(8, 0xff).reduceAnd().toUint64(), 1u);
    EXPECT_EQ(Bits(8, 0xfe).reduceAnd().toUint64(), 0u);
    EXPECT_EQ(Bits(8, 0x03).reduceXor().toUint64(), 0u);
    EXPECT_EQ(Bits(8, 0x07).reduceXor().toUint64(), 1u);
    EXPECT_TRUE(Bits(3, 7).all());
    EXPECT_FALSE(Bits(3, 6).all());
}

TEST(BitsConcat, TwoAndMany)
{
    Bits hi(4, 0xa), lo(4, 0x5);
    EXPECT_EQ(concat(hi, lo).toUint64(), 0xa5u);
    EXPECT_EQ(concat(hi, lo).nbits(), 8);
    Bits c = concat({Bits(4, 1), Bits(4, 2), Bits(4, 3)});
    EXPECT_EQ(c.toUint64(), 0x123u);
    EXPECT_EQ(c.nbits(), 12);
}

TEST(BitsString, Formatting)
{
    EXPECT_EQ(Bits(12, 0xabc).toHexString(), "0xabc");
    EXPECT_EQ(Bits(13, 0xabc).toHexString(), "0x0abc");
    EXPECT_EQ(Bits(4, 5).toBinString(), "0b0101");
    EXPECT_EQ(Bits(32, 1234).toDecString(), "1234");
}

// Property sweep: narrow and wide paths must agree on every operator.
class BitsWidthSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BitsWidthSweep, WidePathMatchesNarrowSemantics)
{
    const int width = GetParam();
    std::mt19937_64 rng(width * 12345 + 1);
    for (int trial = 0; trial < 100; ++trial) {
        uint64_t x = rng(), y = rng();
        Bits a(width, x), b(width, y);
        // Embed in a wider vector and compare low slices.
        Bits wa = a.zext(width + 70);
        Bits wb = b.zext(width + 70);
        EXPECT_EQ((wa + wb).slice(0, width), a + b);
        EXPECT_EQ((wa * wb).slice(0, width), a * b);
        EXPECT_EQ((wa & wb).slice(0, width), a & b);
        EXPECT_EQ((wa | wb).slice(0, width), a | b);
        EXPECT_EQ((wa ^ wb).slice(0, width), a ^ b);
        EXPECT_EQ((wa == wb), (a == b));
        int sh = static_cast<int>(x % width);
        EXPECT_EQ(wa.shl(sh).slice(0, width),
                  a.shl(sh)); // low bits agree under left shift
        EXPECT_EQ(a.shr(sh), wa.slice(0, width).zext(width).shr(sh));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsWidthSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 31, 32, 33,
                                           48, 63, 64));

// Round-trip property: slice/setSlice are inverses.
class BitsSliceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(BitsSliceSweep, SetThenGetRoundTrips)
{
    auto [total, lsb, len] = GetParam();
    std::mt19937_64 rng(total * 31 + lsb * 7 + len);
    for (int trial = 0; trial < 50; ++trial) {
        Bits whole = Bits::fromWords(
            total, {rng(), rng(), rng(), rng()});
        Bits part(len, rng());
        Bits modified = whole;
        modified.setSlice(lsb, part);
        EXPECT_EQ(modified.slice(lsb, len), part);
        // Bits outside the slice are untouched.
        if (lsb > 0) {
            EXPECT_EQ(modified.slice(0, lsb), whole.slice(0, lsb));
        }
        if (lsb + len < total) {
            EXPECT_EQ(modified.slice(lsb + len, total - lsb - len),
                      whole.slice(lsb + len, total - lsb - len));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Slices, BitsSliceSweep,
    ::testing::Values(std::tuple{8, 0, 8}, std::tuple{8, 3, 4},
                      std::tuple{64, 60, 4}, std::tuple{128, 60, 10},
                      std::tuple{128, 0, 128}, std::tuple{200, 120, 70},
                      std::tuple{65, 63, 2}));

// Shift/truncation edge cases. These pin down the amounts where naive
// implementations hit undefined behaviour (shifting a uint64_t by 64,
// OR-ing an out-of-range sign mask); CI runs this suite under
// -fsanitize=address,undefined to prove the paths stay clean.

TEST(BitsShifts, AmountsAtAndBeyondWidth)
{
    Bits a(8, 0xa5);
    EXPECT_EQ(a.shl(0).toUint64(), 0xa5u);
    EXPECT_EQ(a.shr(0).toUint64(), 0xa5u);
    EXPECT_EQ(a.shl(7).toUint64(), 0x80u);
    EXPECT_EQ(a.shr(7).toUint64(), 0x01u);
    EXPECT_EQ(a.shl(8).toUint64(), 0u);
    EXPECT_EQ(a.shr(8).toUint64(), 0u);
    EXPECT_EQ(a.shl(1000).toUint64(), 0u);
    EXPECT_EQ(a.shr(1000).toUint64(), 0u);
}

TEST(BitsShifts, SixtyFourBitBoundary)
{
    Bits a(64, 0x8000000000000001ull);
    EXPECT_EQ(a.shl(63).toUint64(), 0x8000000000000000ull);
    EXPECT_EQ(a.shr(63).toUint64(), 1u);
    EXPECT_EQ(a.shl(64).toUint64(), 0u);
    EXPECT_EQ(a.shr(64).toUint64(), 0u);
    EXPECT_EQ(a.sra(63).toUint64(), ~uint64_t(0));
    EXPECT_EQ(a.sra(64).toUint64(), ~uint64_t(0));
}

TEST(BitsShifts, WideCrossWordShifts)
{
    Bits a = Bits::fromWords(
        128, {0xdeadbeefcafebabeull, 0x0123456789abcdefull});
    // Word-aligned amounts take the bit_shift == 0 path.
    EXPECT_EQ(a.shr(64).toUint64(), 0x0123456789abcdefull);
    EXPECT_EQ(a.shl(64).word(1), 0xdeadbeefcafebabeull);
    EXPECT_EQ(a.shl(64).word(0), 0u);
    // A straddling amount combines both carry directions.
    Bits r = a.shr(4);
    EXPECT_EQ(r.word(0), (0xdeadbeefcafebabeull >> 4) |
                             (0x0123456789abcdefull << 60));
    EXPECT_EQ(a.shr(127).toUint64(), 0u);
    EXPECT_EQ(a.shr(128).toUint64(), 0u);
}

TEST(BitsShifts, SraSignFill)
{
    Bits n(8, 0x80);
    EXPECT_EQ(n.sra(1).toUint64(), 0xc0u);
    EXPECT_EQ(n.sra(7).toUint64(), 0xffu);
    EXPECT_EQ(n.sra(100).toUint64(), 0xffu);
    Bits p(8, 0x40);
    EXPECT_EQ(p.sra(1).toUint64(), 0x20u);
    EXPECT_EQ(p.sra(100).toUint64(), 0u);
}

TEST(BitsShifts, OperatorShiftWithHugeDynamicAmount)
{
    Bits a(16, 0xffff);
    // 2**64: does not fit a uint64_t, must still shift out cleanly.
    Bits huge = Bits::fromWords(128, {0, 1});
    EXPECT_EQ((a << huge).toUint64(), 0u);
    EXPECT_EQ((a >> huge).toUint64(), 0u);
    Bits sixteen(8, 16);
    EXPECT_EQ((a << sixteen).toUint64(), 0u);
    EXPECT_EQ((a >> sixteen).toUint64(), 0u);
}

TEST(BitsTruncation, ZextAndToInt64AtWidthBoundaries)
{
    Bits a(64, ~uint64_t(0));
    EXPECT_EQ(a.toInt64(), -1);
    EXPECT_EQ(a.zext(4).toUint64(), 0xfu);
    EXPECT_EQ(a.zext(128).slice(0, 64).toUint64(), ~uint64_t(0));
    EXPECT_EQ(Bits(1, 1).toInt64(), -1);
    EXPECT_EQ(Bits(64, 1).toInt64(), 1);
    Bits wide = Bits::fromWords(128, {0x5555aaaa5555aaaaull, 0xffull});
    EXPECT_EQ(wide.zext(64).toUint64(), 0x5555aaaa5555aaaaull);
}

} // namespace
} // namespace cmtl
