/**
 * ParSim parallel-vs-sequential equivalence.
 *
 * The contract under test: ParSimulationTool is bit-identical to
 * SimulationTool at any thread count, on every ExecMode/SpecMode
 * combination it supports — verified on the mesh RTL/CLSpec networks
 * and the multi-tile system by lockstepping a parallel and a
 * sequential simulator over identically constructed designs and
 * comparing every net, the VCD byte stream, and end-to-end workload
 * results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/jit_cpp.h"
#include "core/partition.h"
#include "core/psim.h"
#include "core/sim.h"
#include "core/vcd.h"
#include "net/mesh.h"
#include "net/traffic.h"
#include "tile/multitile.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

SimConfig
parCfg(SpecMode spec, int threads)
{
    SimConfig cfg;
    cfg.exec = ExecMode::OptInterp;
    cfg.spec = spec;
    cfg.threads = threads;
    return cfg;
}

void
expectSameState(Simulator &seq, Simulator &par, const std::string &ctx)
{
    const auto &nets = seq.elaboration().nets;
    for (const Net &net : nets) {
        ASSERT_EQ(seq.readNet(net.id), par.readNet(net.id))
            << ctx << ": net " << net.name << " diverged at cycle "
            << seq.numCycles();
    }
}

// ------------------------------------------------- mesh equivalence

void
runMeshEquiv(NetLevel level, int nrouters, SpecMode spec, int threads,
             int cycles)
{
    const double rate = 0.25;
    const uint64_t seed = 7;
    auto ta = std::make_unique<MeshTrafficTop>("top", level, nrouters, 4,
                                               rate, seed);
    auto tb = std::make_unique<MeshTrafficTop>("top", level, nrouters, 4,
                                               rate, seed);
    auto ea = ta->elaborate();
    auto eb = tb->elaborate();
    SimulationTool seq(ea, parCfg(spec, 1));
    ParSimulationTool par(eb, parCfg(spec, threads));

    std::ostringstream ctx;
    ctx << "level=" << static_cast<int>(level) << " spec="
        << static_cast<int>(spec) << " threads=" << threads;

    seq.reset();
    par.reset();
    for (int c = 0; c < cycles; ++c) {
        seq.cycle();
        par.cycle();
        if (c % 16 == 15)
            expectSameState(seq, par, ctx.str());
    }
    expectSameState(seq, par, ctx.str());
    EXPECT_EQ(ta->stats().generated, tb->stats().generated);
    EXPECT_EQ(ta->stats().received, tb->stats().received);
    EXPECT_EQ(ta->stats().latency_sum, tb->stats().latency_sum);
    EXPECT_EQ(ta->inFlight(), tb->inFlight());
    EXPECT_GT(tb->stats().received, 0u) << "degenerate scenario";
}

class PsimMeshRtl
    : public ::testing::TestWithParam<std::tuple<int, SpecMode>>
{};

TEST_P(PsimMeshRtl, BitIdenticalOn8x8)
{
    auto [threads, spec] = GetParam();
    runMeshEquiv(NetLevel::RTL, 64, spec, threads, 96);
}

TEST_P(PsimMeshRtl, BitIdenticalOn4x4ClSpec)
{
    auto [threads, spec] = GetParam();
    runMeshEquiv(NetLevel::CLSpec, 16, spec, threads, 128);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSpec, PsimMeshRtl,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(SpecMode::None,
                                         SpecMode::Bytecode)));

TEST(PsimMeshRtl, BitIdenticalWithCppSpec)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";
    runMeshEquiv(NetLevel::RTL, 16, SpecMode::Cpp, 2, 64);
}

// -------------------------------------------------- VCD equivalence

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(PsimVcd, ByteIdenticalWaveforms)
{
    const std::string seq_path = ::testing::TempDir() + "psim_seq.vcd";
    const std::string par_path = ::testing::TempDir() + "psim_par.vcd";
    for (int threads : {2, 4}) {
        auto ta = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                   16, 4, 0.3, 11);
        auto tb = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                   16, 4, 0.3, 11);
        {
            SimulationTool seq(ta->elaborate(),
                               parCfg(SpecMode::None, 1));
            VcdWriter vcd(seq, seq_path);
            seq.reset();
            seq.cycle(80);
            vcd.close();
        }
        {
            ParSimulationTool par(tb->elaborate(),
                                  parCfg(SpecMode::Bytecode, threads));
            VcdWriter vcd(par, par_path);
            par.reset();
            par.cycle(80);
            vcd.close();
        }
        std::string a = slurp(seq_path);
        std::string b = slurp(par_path);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "VCD streams differ at threads=" << threads;
    }
    std::remove(seq_path.c_str());
    std::remove(par_path.c_str());
}

// --------------------------------------------- multitile equivalence

TEST(PsimMultiTile, MvmultBitIdentical)
{
    using namespace tile;
    Workload w = makeMvmultMultiTile(4, /*use_accel=*/false);

    auto makeSys = [&] {
        auto sys = std::make_unique<MultiTileSystem>(
            "sys", std::vector<std::array<Level, 3>>{
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL}});
        sys->loadProgram(w.image);
        loadMvmultData(sys->memNode(), w);
        return sys;
    };

    auto sys_a = makeSys();
    auto sys_b = makeSys();
    SimulationTool seq(sys_a->elaborate(), parCfg(SpecMode::Bytecode, 1));
    ParSimulationTool par(sys_b->elaborate(),
                          parCfg(SpecMode::Bytecode, 4));

    seq.reset();
    par.reset();
    uint64_t cycles = 0;
    const uint64_t max_cycles = 3000000;
    while (!sys_a->allHalted() && cycles < max_cycles) {
        seq.cycle(256);
        par.cycle(256);
        cycles += 256;
        ASSERT_EQ(sys_a->allHalted(), sys_b->allHalted())
            << "halt divergence at cycle " << cycles;
    }
    ASSERT_TRUE(sys_a->allHalted()) << "deadlock after " << cycles;
    seq.cycle(500);
    par.cycle(500);
    expectSameState(seq, par, "multitile");

    auto expect = expectedMvmult(w);
    for (int t = 0; t < sys_b->numTiles(); ++t) {
        uint32_t base =
            w.out_addr + static_cast<uint32_t>(t) * w.n * 4;
        for (int r = 0; r < w.n; ++r) {
            ASSERT_EQ(sys_b->memNode().readWord(
                          base + static_cast<uint32_t>(r) * 4),
                      expect[r])
                << "tile " << t << " row " << r;
        }
    }
}

// ------------------------------------------------ partition sanity

TEST(Partition, InvariantsOnMeshRtl)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 64,
                                                4, 0.2, 3);
    auto elab = top->elaborate();
    for (int n : {1, 2, 4, 8}) {
        PartitionPlan plan = partitionDesign(*elab, n);
        ASSERT_GE(plan.nislands, 1);
        ASSERT_LE(plan.nislands, n);

        // Every assignable block lands in exactly one island.
        std::vector<int> seen(elab->blocks.size(), 0);
        for (const PartitionIsland &isl : plan.islands) {
            for (int b : isl.combBlocks)
                ++seen[b];
            for (int b : isl.tickBlocks)
                ++seen[b];
        }
        for (int b : plan.lambdaTicks)
            ++seen[b];
        for (size_t b = 0; b < elab->blocks.size(); ++b)
            ASSERT_EQ(seen[b], 1) << "block " << elab->blocks[b].name;

        // Superstep levels are nondecreasing within an island, and the
        // mesh (registered queue outputs) must need at most two
        // supersteps regardless of island count.
        for (const PartitionIsland &isl : plan.islands) {
            for (size_t k = 1; k < isl.combLevels.size(); ++k)
                ASSERT_LE(isl.combLevels[k - 1], isl.combLevels[k]);
        }
        ASSERT_LE(plan.nlevels, 2) << "mesh settle depth regressed";

        // Ownership: owned tokens point back at their island.
        for (size_t i = 0; i < plan.islands.size(); ++i) {
            for (int t : plan.islands[i].ownedTokens)
                ASSERT_EQ(plan.ownerOf[t], static_cast<int>(i));
        }
        ASSERT_GE(plan.imbalance(), 1.0);
        if (plan.nislands > 1) {
            ASSERT_GT(plan.cutTokens, 0);
        }

        std::string report = partitionReport(*elab, plan);
        EXPECT_NE(report.find("island"), std::string::npos);
    }
}

TEST(Partition, BalancesMeshAcrossIslands)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 64,
                                                4, 0.2, 3);
    auto elab = top->elaborate();
    PartitionPlan plan = partitionDesign(*elab, 4);
    ASSERT_EQ(plan.nislands, 4);
    // 64 identical routers into 4 islands: near-perfect balance.
    EXPECT_LT(plan.imbalance(), 1.25);
}

TEST(Partition, RefinementShrinksMeshCut)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 64,
                                                4, 0.2, 3);
    auto elab = top->elaborate();
    for (int n : {2, 4, 8}) {
        PartitionOptions chunked;
        chunked.refine = false;
        PartitionPlan seed = partitionDesign(*elab, n, chunked);
        PartitionPlan refined = partitionDesign(*elab, n);

        // The refined plan records the seed it started from, and the
        // recorded seed matches an actual chunked run.
        ASSERT_EQ(refined.seedCutTokens, seed.cutTokens)
            << "islands=" << n;
        ASSERT_EQ(refined.seedCutCombEdges, seed.cutCombEdges)
            << "islands=" << n;
        EXPECT_EQ(seed.refineMoves, 0);

        // Refinement never regresses the cut, and must strictly
        // shrink it wherever the chunked strips are suboptimal: at 4+
        // islands a mesh admits tilings with shorter boundaries than
        // the locality-sorted row strips. (At 2 islands the single
        // strip boundary is already globally minimal, so equality is
        // the correct answer there.)
        EXPECT_LE(refined.cutTokens, seed.cutTokens) << "islands=" << n;
        if (n >= 4) {
            EXPECT_LT(refined.cutTokens, seed.cutTokens)
                << "islands=" << n;
        }
        EXPECT_GT(refined.refinePasses, 0);

        // ...without blowing the balance bound.
        EXPECT_LE(refined.imbalance(),
                  std::max(seed.imbalance(), 1.11));
    }
}

TEST(Partition, ClampsAndCompactsDegenerateIslandCounts)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 4,
                                                4, 0.2, 3);
    auto elab = top->elaborate();
    // Far more islands than atomic clusters: the plan must clamp to
    // the effective count, keep every island non-empty, and report a
    // finite imbalance instead of dividing by empty islands.
    PartitionPlan plan = partitionDesign(*elab, 512);
    EXPECT_EQ(plan.requestedIslands, 512);
    ASSERT_GE(plan.nislands, 1);
    ASSERT_LE(plan.nislands, plan.nclusters);
    ASSERT_EQ(static_cast<int>(plan.islands.size()), plan.nislands);
    for (const PartitionIsland &isl : plan.islands) {
        EXPECT_GT(isl.combBlocks.size() + isl.tickBlocks.size(), 0u);
        EXPECT_GT(isl.weight, 0);
    }
    double imb = plan.imbalance();
    EXPECT_GE(imb, 1.0);
    EXPECT_TRUE(std::isfinite(imb));
    std::string report = partitionReport(*elab, plan);
    EXPECT_NE(report.find("requested 512"), std::string::npos);
}

TEST(Psim, RejectsUnsupportedConfigs)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                                4, 0.2, 3);
    auto elab = top->elaborate();
    SimConfig cfg;
    cfg.exec = ExecMode::Interp;
    cfg.threads = 2;
    EXPECT_THROW(ParSimulationTool(elab, cfg), std::logic_error);
    cfg = SimConfig{};
    cfg.sched = SchedMode::Event;
    cfg.threads = 2;
    EXPECT_THROW(ParSimulationTool(elab, cfg), std::logic_error);
}

TEST(Psim, FactoryDispatchesOnThreadCount)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                                4, 0.2, 3);
    SimConfig cfg;
    cfg.threads = 2;
    auto sim = makeSimulator(top->elaborate(), cfg);
    EXPECT_NE(dynamic_cast<ParSimulationTool *>(sim.get()), nullptr);

    auto top2 = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                                 4, 0.2, 3);
    cfg.threads = 1;
    auto sim2 = makeSimulator(top2->elaborate(), cfg);
    EXPECT_NE(dynamic_cast<SimulationTool *>(sim2.get()), nullptr);
}

} // namespace
} // namespace cmtl
