#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/lint.h"
#include "core/sim.h"
#include "core/translate.h"
#include "core/vcd.h"
#include "test_models.h"

namespace cmtl {
namespace {

using testmodels::Counter;
using testmodels::MuxReg;
using testmodels::Register;

// ------------------------------------------------------------ Translate

TEST(Translate, MuxRegProducesStructuralVerilog)
{
    MuxReg top(nullptr, "top", 8, 4);
    auto elab = top.elaborate();
    std::string v = TranslationTool().translate(*elab);

    // All three module definitions are present.
    EXPECT_NE(v.find("module MuxReg_8_4"), std::string::npos);
    EXPECT_NE(v.find("module Register_8"), std::string::npos);
    EXPECT_NE(v.find("module Mux_8_4"), std::string::npos);

    // Ports, instances and port maps.
    EXPECT_NE(v.find("input  wire clk"), std::string::npos);
    EXPECT_NE(v.find("Register_8 reg_"), std::string::npos);
    EXPECT_NE(v.find("Mux_8_4 mux"), std::string::npos);
    EXPECT_NE(v.find(".sel(sel)"), std::string::npos);
    EXPECT_NE(v.find(".reset(reset)"), std::string::npos);

    // Behavioural blocks.
    EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
    EXPECT_NE(v.find("always @(*)"), std::string::npos);
    EXPECT_NE(v.find("out <= in_;"), std::string::npos);
}

TEST(Translate, ChildToChildConnectionsGetWires)
{
    MuxReg top(nullptr, "top", 8, 4);
    auto elab = top.elaborate();
    std::string v = TranslationTool().translate(*elab);
    // mux.out -> reg_.in_ must route through a generated wire.
    EXPECT_NE(v.find("wire [7:0] w_"), std::string::npos);
}

TEST(Translate, CounterEmitsIfElse)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("if (reset) begin"), std::string::npos);
    EXPECT_NE(v.find("end else begin"), std::string::npos);
    EXPECT_NE(v.find("count <= (count + 8'h01);"), std::string::npos);
}

TEST(Translate, LambdaModelsAreRejected)
{
    class FlModel : public Model
    {
      public:
        FlModel() : Model(nullptr, "fl")
        {
            tickFl("logic", [] {});
        }
    };
    FlModel fl;
    auto elab = fl.elaborate();
    EXPECT_THROW(TranslationTool().translate(*elab), std::logic_error);
}

TEST(Translate, ConstantsUseSizedLiterals)
{
    Counter top(nullptr, "top", 12);
    auto elab = top.elaborate();
    std::string v = TranslationTool().translate(*elab);
    EXPECT_NE(v.find("12'h"), std::string::npos);
}

TEST(Translate, WritesFile)
{
    Register top(nullptr, "top", 8);
    auto elab = top.elaborate();
    std::string path = ::testing::TempDir() + "/cmtl_reg.v";
    std::string v = TranslationTool().translateToFile(*elab, path);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), v);
    std::remove(path.c_str());
}

// ----------------------------------------------------------------- Lint

TEST(Lint, CleanDesignHasNoErrors)
{
    MuxReg top(nullptr, "top", 8, 4);
    auto elab = top.elaborate();
    auto issues = LintTool().run(*elab);
    for (const auto &issue : issues)
        EXPECT_NE(issue.severity, LintSeverity::Error)
            << LintTool::format({issue});
}

TEST(Lint, DetectsMultipleDrivers)
{
    class DoubleDriver : public Model
    {
      public:
        InPort a;
        OutPort out;
        DoubleDriver()
            : Model(nullptr, "dd"), a(this, "a", 8), out(this, "out", 8)
        {
            auto &c1 = combinational("one");
            c1.assign(out, rd(a));
            auto &c2 = combinational("two");
            c2.assign(out, rd(a) + 1);
        }
    };
    DoubleDriver dd;
    auto elab = dd.elaborate();
    auto issues = LintTool().run(*elab);
    bool found = false;
    for (const auto &issue : issues)
        found |= issue.check == "multiple-drivers";
    EXPECT_TRUE(found) << LintTool::format(issues);
}

TEST(Lint, DetectsUndrivenAndUnreadNets)
{
    class Dangling : public Model
    {
      public:
        Wire floating; //!< read, never written
        Wire unused;   //!< written, never read
        OutPort out;
        Dangling()
            : Model(nullptr, "d"), floating(this, "floating", 4),
              unused(this, "unused", 4), out(this, "out", 4)
        {
            auto &c = combinational("comb");
            c.assign(out, rd(floating));
            auto &c2 = combinational("comb2");
            c2.assign(unused, lit(4, 3));
        }
    };
    Dangling d;
    auto elab = d.elaborate();
    auto issues = LintTool().run(*elab);
    bool undriven = false, unread = false;
    for (const auto &issue : issues) {
        undriven |= issue.check == "undriven-net" &&
                    issue.message.find("floating") != std::string::npos;
        unread |= issue.check == "unread-net" &&
                  issue.message.find("unused") != std::string::npos;
    }
    EXPECT_TRUE(undriven) << LintTool::format(issues);
    EXPECT_TRUE(unread) << LintTool::format(issues);
}

TEST(Lint, ReportsCombCycle)
{
    class Loop : public Model
    {
      public:
        Wire a, b;
        Loop() : Model(nullptr, "loop"), a(this, "a", 1), b(this, "b", 1)
        {
            auto &c1 = combinational("fwd");
            c1.assign(b, rd(a));
            auto &c2 = combinational("bwd");
            c2.assign(a, rd(b));
        }
    };
    Loop loop;
    auto elab = loop.elaborate();
    auto issues = LintTool().run(*elab);
    bool found = false;
    for (const auto &issue : issues)
        found |= issue.check == "comb-cycle";
    EXPECT_TRUE(found);
}

// ------------------------------------------------------------------ VCD

TEST(Vcd, DumpsHeaderAndChanges)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    std::string path = ::testing::TempDir() + "/cmtl_counter.vcd";
    {
        VcdWriter vcd(sim, path);
        top.en.setValue(uint64_t(1));
        sim.cycle(5);
        vcd.close();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    EXPECT_NE(text.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(text.find("$scope module top $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 8"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(text.find("#10"), std::string::npos);
    EXPECT_NE(text.find("#50"), std::string::npos);
    // The 8-bit count changes each cycle: binary dumps present.
    EXPECT_NE(text.find("b00000011"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Vcd, OnlyChangedNetsAreRedumped)
{
    Register top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    std::string path = ::testing::TempDir() + "/cmtl_stable.vcd";
    {
        VcdWriter vcd(sim, path);
        top.in_.setValue(uint64_t(0x42));
        sim.cycle(4); // output settles after cycle 1, then no changes
        vcd.close();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    size_t count = 0;
    for (size_t pos = text.find("b01000010");
         pos != std::string::npos; pos = text.find("b01000010", pos + 1))
        ++count;
    // in_ and out each dump 0x42 exactly once.
    EXPECT_EQ(count, 2u);
    std::remove(path.c_str());
}

TEST(Vcd, EmitsInitialDumpvarsSection)
{
    Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    std::string path = ::testing::TempDir() + "/cmtl_dumpvars.vcd";
    {
        VcdWriter vcd(sim, path);
        vcd.close();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    // Spec-mandated initial-value section: #0, $dumpvars, one value
    // per net, $end — in that order, right after the definitions.
    size_t defs = text.find("$enddefinitions $end");
    size_t t0 = text.find("#0\n");
    size_t dv = text.find("$dumpvars");
    size_t dv_end = text.find("$end", dv + 1);
    ASSERT_NE(defs, std::string::npos);
    ASSERT_NE(t0, std::string::npos);
    ASSERT_NE(dv, std::string::npos);
    ASSERT_NE(dv_end, std::string::npos);
    EXPECT_LT(defs, t0);
    EXPECT_LT(t0, dv);
    EXPECT_LT(dv, dv_end);
    // Every net (en, count, ...) gets an initial value inside it.
    size_t values = 0;
    std::stringstream section(text.substr(dv, dv_end - dv));
    std::string line;
    while (std::getline(section, line)) {
        if (!line.empty() &&
            (line[0] == '0' || line[0] == '1' || line[0] == 'b'))
            ++values;
    }
    EXPECT_GE(values, elab->nets.size());
    std::remove(path.c_str());
}

TEST(Vcd, SuppressesChangeFreeTimestamps)
{
    Register top(nullptr, "top", 8);
    auto elab = top.elaborate();
    SimulationTool sim(elab);
    std::string path = ::testing::TempDir() + "/cmtl_quiet.vcd";
    {
        VcdWriter vcd(sim, path);
        top.in_.setValue(uint64_t(0x42));
        sim.cycle(10); // all change settles in cycle 1
        vcd.close();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    // Only #0 (initial dump) and #10 (the one changing cycle) appear;
    // the eight change-free cycles emit no timestamp at all.
    EXPECT_NE(text.find("#0\n"), std::string::npos);
    EXPECT_NE(text.find("#10\n"), std::string::npos);
    for (int t = 2; t <= 10; ++t) {
        std::string stamp = "#" + std::to_string(t * 10) + "\n";
        EXPECT_EQ(text.find(stamp), std::string::npos) << stamp;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace cmtl
