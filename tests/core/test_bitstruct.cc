#include <gtest/gtest.h>

#include "core/bitstruct.h"

namespace cmtl {
namespace {

BitStructLayout
netMsgLayout()
{
    // Paper's NetMsg: dest, src, opaque, payload (first field = MSBs).
    return BitStructLayout("NetMsg", {{"dest", 6},
                                      {"src", 6},
                                      {"opaque", 4},
                                      {"payload", 16}});
}

TEST(BitStruct, WidthAndOffsets)
{
    BitStructLayout layout = netMsgLayout();
    EXPECT_EQ(layout.nbits(), 32);
    EXPECT_EQ(layout.field("dest").lsb, 26);
    EXPECT_EQ(layout.field("src").lsb, 20);
    EXPECT_EQ(layout.field("opaque").lsb, 16);
    EXPECT_EQ(layout.field("payload").lsb, 0);
    EXPECT_TRUE(layout.hasField("src"));
    EXPECT_FALSE(layout.hasField("bogus"));
    EXPECT_THROW(layout.field("bogus"), std::out_of_range);
}

TEST(BitStruct, PackAndGet)
{
    BitStructLayout layout = netMsgLayout();
    Bits msg = layout.pack({9, 3, 5, 0xbeef});
    EXPECT_EQ(layout.get(msg, "dest").toUint64(), 9u);
    EXPECT_EQ(layout.get(msg, "src").toUint64(), 3u);
    EXPECT_EQ(layout.get(msg, "opaque").toUint64(), 5u);
    EXPECT_EQ(layout.get(msg, "payload").toUint64(), 0xbeefu);
    EXPECT_THROW(layout.pack({1, 2}), std::invalid_argument);
}

TEST(BitStruct, SetPreservesOtherFields)
{
    BitStructLayout layout = netMsgLayout();
    Bits msg = layout.pack({9, 3, 5, 0xbeef});
    Bits updated = layout.set(msg, "src", 42);
    EXPECT_EQ(layout.get(updated, "src").toUint64(), 42u);
    EXPECT_EQ(layout.get(updated, "dest").toUint64(), 9u);
    EXPECT_EQ(layout.get(updated, "payload").toUint64(), 0xbeefu);
}

TEST(BitStruct, SetTruncatesWideValues)
{
    BitStructLayout layout = netMsgLayout();
    Bits msg(32, 0);
    Bits updated = layout.set(msg, "opaque", Bits(16, 0x123));
    EXPECT_EQ(layout.get(updated, "opaque").toUint64(), 0x3u);
}

TEST(BitStruct, SingleField)
{
    BitStructLayout layout("Raw", {{"data", 64}});
    EXPECT_EQ(layout.nbits(), 64);
    Bits msg = layout.pack({~uint64_t(0)});
    EXPECT_EQ(layout.get(msg, "data").toUint64(), ~uint64_t(0));
}

TEST(BitStruct, RejectsZeroWidthFields)
{
    EXPECT_THROW(BitStructLayout("Bad", {{"x", 0}}),
                 std::invalid_argument);
}

TEST(BitStruct, TraceFormatting)
{
    BitStructLayout layout("T", {{"a", 4}, {"b", 4}});
    Bits msg = layout.pack({0xa, 0x5});
    EXPECT_EQ(layout.trace(msg), "a:0xa|b:0x5");
}

} // namespace
} // namespace cmtl
