#include <gtest/gtest.h>

#include <random>

#include "core/ir_bytecode.h"
#include "core/sim.h"
#include "test_models.h"

namespace cmtl {
namespace {

TEST(IrBuild, ExpressionWidthRules)
{
    testmodels::Register owner(nullptr, "m", 8);
    IrExpr a = rd(owner.in_);
    IrExpr b = lit(16, 0x1234);
    EXPECT_EQ((a + b).nbits(), 16); // max of operand widths
    EXPECT_EQ((a == b).nbits(), 1);
    EXPECT_EQ((a < b).nbits(), 1);
    EXPECT_EQ((a << b).nbits(), 8); // lhs width
    EXPECT_EQ((a && b).nbits(), 1);
    EXPECT_EQ((~a).nbits(), 8);
    EXPECT_EQ((!a).nbits(), 1);
    EXPECT_EQ(a.reduceXor().nbits(), 1);
    EXPECT_EQ(a.slice(2, 3).nbits(), 3);
    EXPECT_EQ(a(7, 4).nbits(), 4);
    EXPECT_EQ(a.bit(0).nbits(), 1);
    EXPECT_EQ(cat(a, b).nbits(), 24);
    EXPECT_EQ(mux(a == b, a, b).nbits(), 16);
    EXPECT_EQ(a.zext(20).nbits(), 20);
    EXPECT_EQ(a.sext(20).nbits(), 20);
}

TEST(IrBuild, SliceBoundsChecked)
{
    testmodels::Register owner(nullptr, "m", 8);
    IrExpr a = rd(owner.in_);
    EXPECT_THROW(a.slice(6, 4), std::out_of_range);
    EXPECT_THROW(a.slice(-1, 2), std::out_of_range);
}

TEST(IrBuild, InvalidExprRejected)
{
    testmodels::Register owner(nullptr, "m", 8);
    IrExpr bad;
    EXPECT_THROW(bad + rd(owner.in_), std::invalid_argument);
    EXPECT_THROW(mux(bad, rd(owner.in_), rd(owner.in_)),
                 std::invalid_argument);
}

TEST(IrBuild, AccessCollection)
{
    testmodels::MuxReg top(nullptr, "top", 8, 4);
    const IrBlock &comb = top.mux_.ownIrBlocks().front();
    std::vector<Signal *> reads, writes;
    irCollectAccess(comb, reads, writes);
    EXPECT_EQ(writes.size(), 1u);
    EXPECT_EQ(writes[0], &top.mux_.out);
    EXPECT_EQ(reads.size(), 5u); // sel + 4 inputs
}

TEST(IrBuild, DumpContainsStructure)
{
    testmodels::Counter top(nullptr, "top", 8);
    std::string dump = irToString(top.ownIrBlocks().front());
    EXPECT_NE(dump.find("tick_rtl"), std::string::npos);
    EXPECT_NE(dump.find("if"), std::string::npos);
    EXPECT_NE(dump.find("top.count"), std::string::npos);
}

// ----------------------------------------------------------------------
// ALU torture model: exercises every IR operator; used to prove all
// four execution backends agree bit-for-bit.

class AluTorture : public Model
{
  public:
    InPort a, b;
    OutPort res;

    AluTorture(int nbits)
        : Model(nullptr, "alu"), a(this, "a", nbits), b(this, "b", nbits),
          res(this, "res", nbits)
    {
        auto &c = combinational("comb");
        IrExpr ea = rd(a);
        IrExpr eb = rd(b);
        IrExpr sum = ea + eb;
        IrExpr t = c.let("t", (ea * eb) ^ (ea - eb));
        IrExpr shifted = (t << eb.slice(0, 3)) | (t >> ea.slice(0, 3));
        IrExpr cmp = mux(ea < eb, sum, shifted);
        IrExpr reduced =
            cat(cmp.reduceXor(), cmp.reduceOr()).zext(nbits);
        IrExpr logic = (~cmp & (ea | eb)) + reduced + sra(ea, lit(3, 2));
        IrExpr folded = c.let("folded", logic ^ t.sext(nbits));
        c.if_(ea == eb, [&] { c.assign(res, folded + 1); },
              [&] {
                  c.if_((ea > eb) && folded.reduceOr(),
                        [&] { c.assign(res, folded - eb); },
                        [&] { c.assign(res, mux(!eb, ea, folded)); });
              });
    }
};

class IrBackendEquiv : public ::testing::TestWithParam<int>
{};

TEST_P(IrBackendEquiv, AllBackendsAgreeOnTortureAlu)
{
    const int nbits = GetParam();
    std::mt19937_64 rng(nbits * 999 + 5);
    std::vector<std::pair<uint64_t, uint64_t>> stimuli;
    for (int i = 0; i < 200; ++i)
        stimuli.emplace_back(rng(), rng());
    stimuli.emplace_back(0, 0);
    stimuli.emplace_back(~uint64_t(0), ~uint64_t(0));
    stimuli.emplace_back(1, 0);

    std::vector<std::vector<uint64_t>> results;
    for (const SimConfig &cfg : testmodels::allModes()) {
        AluTorture alu(nbits);
        auto elab = alu.elaborate();
        SimulationTool sim(elab, cfg);
        std::vector<uint64_t> outs;
        for (auto [x, y] : stimuli) {
            alu.a.setValue(Bits(nbits, x));
            alu.b.setValue(Bits(nbits, y));
            sim.eval();
            outs.push_back(alu.res.u64());
        }
        results.push_back(std::move(outs));
    }
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i], results[0])
            << testmodels::modeName(testmodels::allModes()[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, IrBackendEquiv,
                         ::testing::Values(4, 8, 13, 16, 32, 63, 64));

TEST(IrBytecode, SpecializableSubset)
{
    AluTorture alu(32);
    auto elab = alu.elaborate();
    ArenaStore store(*elab);
    ASSERT_EQ(elab->blocks.size(), 1u);
    EXPECT_TRUE(bcSpecializable(elab->blocks[0], store));

    // A wide model is outside the subset.
    class WideModel : public Model
    {
      public:
        InPort in_;
        OutPort out;
        WideModel()
            : Model(nullptr, "w"), in_(this, "in_", 100),
              out(this, "out", 100)
        {
            auto &c = combinational("comb");
            c.assign(out, rd(in_));
        }
    };
    WideModel wide;
    auto welab = wide.elaborate();
    ArenaStore wstore(*welab);
    EXPECT_FALSE(bcSpecializable(welab->blocks[0], wstore));
}

TEST(IrBytecode, ProgramsAreCompact)
{
    AluTorture alu(32);
    auto elab = alu.elaborate();
    ArenaStore store(*elab);
    BcProgram prog = bcCompile(elab->blocks[0], store);
    EXPECT_GT(prog.insts.size(), 10u);
    EXPECT_LT(prog.insts.size(), 200u);
    EXPECT_GT(prog.nscratch, 0);
    EXPECT_LT(prog.nscratch, 100);
}

} // namespace
} // namespace cmtl
