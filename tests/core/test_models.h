/**
 * @file
 * Small reference models shared by the core test suites — the models
 * of the paper's Figure 2 (Register, Mux, MuxReg) plus a counter.
 */

#ifndef CMTL_TESTS_CORE_TEST_MODELS_H
#define CMTL_TESTS_CORE_TEST_MODELS_H

#include <deque>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/sim.h"

namespace cmtl {
namespace testmodels {

/** Paper Figure 2: a simple positive-edge register. */
class Register : public Model
{
  public:
    InPort in_;
    OutPort out;

    Register(Model *parent, const std::string &name, int nbits)
        : Model(parent, name), in_(this, "in_", nbits),
          out(this, "out", nbits)
    {
        auto &b = tickRtl("seq_logic");
        b.assign(out, rd(in_));
    }

    std::string
    typeName() const override
    {
        return "Register_" + std::to_string(in_.nbits());
    }
};

/** Paper Figure 2: an n-input mux built from an if-chain. */
class Mux : public Model
{
  public:
    std::deque<InPort> in_;
    InPort sel;
    OutPort out;

    Mux(Model *parent, const std::string &name, int nbits, int nports)
        : Model(parent, name), sel(this, "sel", bitsFor(nports)),
          out(this, "out", nbits)
    {
        for (int i = 0; i < nports; ++i)
            in_.emplace_back(this, "in_" + std::to_string(i), nbits);

        auto &b = combinational("comb_logic");
        IrExpr result = rd(in_[0]);
        for (int i = nports - 1; i >= 1; --i) {
            result = mux(rd(sel) == static_cast<uint64_t>(i), rd(in_[i]),
                         result);
        }
        b.assign(out, result);
    }

    std::string
    typeName() const override
    {
        return "Mux_" + std::to_string(out.nbits()) + "_" +
               std::to_string(in_.size());
    }
};

/** Paper Figure 2: mux feeding a register, composed structurally. */
class MuxReg : public Model
{
  public:
    std::deque<InPort> in_;
    InPort sel;
    OutPort out;
    Register reg_;
    Mux mux_;

    MuxReg(Model *parent, const std::string &name, int nbits = 8,
           int nports = 4)
        : Model(parent, name), sel(this, "sel", bitsFor(nports)),
          out(this, "out", nbits), reg_(this, "reg_", nbits),
          mux_(this, "mux", nbits, nports)
    {
        for (int i = 0; i < nports; ++i)
            in_.emplace_back(this, "in_" + std::to_string(i), nbits);

        connect(sel, mux_.sel);
        for (int i = 0; i < nports; ++i)
            connect(in_[i], mux_.in_[i]);
        connect(mux_.out, reg_.in_);
        connect(reg_.out, out);
    }

    std::string
    typeName() const override
    {
        return "MuxReg_" + std::to_string(out.nbits()) + "_" +
               std::to_string(in_.size());
    }
};

/** A resettable counter with enable, exercising reset + if/else. */
class Counter : public Model
{
  public:
    InPort en;
    OutPort count;

    Counter(Model *parent, const std::string &name, int nbits)
        : Model(parent, name), en(this, "en", 1),
          count(this, "count", nbits)
    {
        auto &b = tickRtl("seq");
        b.if_(rd(reset), [&] { b.assign(count, 0); },
              [&] {
                  b.if_(rd(en),
                        [&] { b.assign(count, rd(count) + 1); });
              });
    }
};

/** All (exec, spec) configurations exercised by mode-matrix tests. */
inline std::vector<SimConfig>
allModes(bool include_cpp = true)
{
    std::vector<SimConfig> modes;
    for (ExecMode exec : {ExecMode::Interp, ExecMode::OptInterp}) {
        for (SpecMode spec :
             {SpecMode::None, SpecMode::Bytecode, SpecMode::Cpp}) {
            if (spec == SpecMode::Cpp &&
                (!include_cpp || !CppJit::compilerAvailable()))
                continue;
            SimConfig cfg;
            cfg.exec = exec;
            cfg.spec = spec;
            modes.push_back(cfg);
        }
    }
    return modes;
}

inline std::string
modeName(const SimConfig &cfg)
{
    std::string out =
        cfg.exec == ExecMode::Interp ? "Interp" : "OptInterp";
    switch (cfg.spec) {
      case SpecMode::None: break;
      case SpecMode::Bytecode: out += "_Bytecode"; break;
      case SpecMode::Cpp: out += "_Cpp"; break;
    }
    switch (cfg.sched) {
      case SchedMode::Auto: break;
      case SchedMode::Event: out += "_Event"; break;
      case SchedMode::Static: out += "_Static"; break;
    }
    return out;
}

} // namespace testmodels
} // namespace cmtl

#endif // CMTL_TESTS_CORE_TEST_MODELS_H
