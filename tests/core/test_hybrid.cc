/**
 * Hybrid-execution (boxed host + specialized groups) edge cases: the
 * storage-ownership partition must keep test-bench visibility of
 * internal specialized state, the translation cache must be
 * transparent, and the graph tool must render designs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>

#include "core/graph.h"
#include "core/sim.h"
#include "test_models.h"

namespace cmtl {
namespace {

using testmodels::Counter;
using testmodels::MuxReg;

/** A specializable counter plus an unspecialized lambda observer. */
class MixedOwnership : public Model
{
  public:
    InPort en;
    OutPort count;
    Wire doubled;
    MemArray history;
    uint64_t lambda_last = 0;

    MixedOwnership()
        : Model(nullptr, "mixed"), en(this, "en", 1),
          count(this, "count", 8), doubled(this, "doubled", 8),
          history(this, "history", 8, 16)
    {
        auto &t = tickRtl("seq");
        t.if_(rd(en), [&] {
            t.assign(count, rd(count) + 1);
            t.writeArray(history, rd(count).slice(0, 4), rd(count));
        });
        auto &c = combinational("comb");
        c.assign(doubled, rd(count) + rd(count));
        // The unspecialized remainder: a lambda observing the
        // specialized region's outputs through SignalAccess.
        tickFl("observe", [this] { lambda_last = doubled.u64(); });
    }
};

class HybridModes : public ::testing::TestWithParam<SimConfig>
{};

TEST_P(HybridModes, TestBenchSeesInternalSpecializedState)
{
    MixedOwnership m;
    auto elab = m.elaborate();
    SimulationTool sim(elab, GetParam());
    m.en.setValue(uint64_t(1));
    sim.cycle(5);
    // Direct reads of specialized-owned state from the test bench.
    EXPECT_EQ(m.count.u64(), 5u);
    EXPECT_EQ(m.doubled.u64(), 10u);
    // Lambda observer saw the pre-edge value during the 5th cycle.
    EXPECT_EQ(m.lambda_last, 8u);
    // Array contents written by the specialized block.
    EXPECT_EQ(sim.readArray(m.history, 3).toUint64(), 3u);
    EXPECT_EQ(sim.readArray(m.history, 4).toUint64(), 4u);
    // Host array writes are visible to the specialized reader side.
    sim.writeArray(m.history, 9, Bits(8, 0x5a));
    EXPECT_EQ(sim.readArray(m.history, 9).toUint64(), 0x5au);
}

TEST_P(HybridModes, PokingSpecializedInputsTakesEffect)
{
    MixedOwnership m;
    auto elab = m.elaborate();
    SimulationTool sim(elab, GetParam());
    m.en.setValue(uint64_t(1));
    sim.cycle(3);
    m.en.setValue(uint64_t(0)); // poke a boundary input
    sim.cycle(3);
    EXPECT_EQ(m.count.u64(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HybridModes, ::testing::ValuesIn(testmodels::allModes()),
    [](const ::testing::TestParamInfo<SimConfig> &info) {
        return testmodels::modeName(info.param);
    });

TEST(JitCache, WarmRunIsCacheHitWithIdenticalBehaviour)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";
    std::string dir =
        ::testing::TempDir() + "/cmtl_cache_test_" +
        std::to_string(::getpid());

    uint64_t results[2];
    bool hits[2];
    for (int run = 0; run < 2; ++run) {
        Counter top(nullptr, "top", 8);
        auto elab = top.elaborate();
        SimConfig cfg;
        cfg.spec = SpecMode::Cpp;
        cfg.jit_cache_dir = dir;
        SimulationTool sim(elab, cfg);
        top.en.setValue(uint64_t(1));
        sim.cycle(9);
        results[run] = top.count.u64();
        hits[run] = sim.specStats().cacheHit;
    }
    EXPECT_FALSE(hits[0]);
    EXPECT_TRUE(hits[1]);
    EXPECT_EQ(results[0], results[1]);
    std::system(("rm -rf " + dir).c_str());
}

TEST(JitCache, CacheDisabledAlwaysCompiles)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";
    std::string dir = ::testing::TempDir() + "/cmtl_nocache_" +
                      std::to_string(::getpid());
    for (int run = 0; run < 2; ++run) {
        Counter top(nullptr, "top", 8);
        auto elab = top.elaborate();
        SimConfig cfg;
        cfg.spec = SpecMode::Cpp;
        cfg.jit_cache = false;
        cfg.jit_cache_dir = dir;
        SimulationTool sim(elab, cfg);
        EXPECT_FALSE(sim.specStats().cacheHit) << "run " << run;
        EXPECT_GT(sim.specStats().compileSeconds, 0.0);
    }
    std::system(("rm -rf " + dir).c_str());
}

TEST(GraphTool, RendersHierarchyAndEdges)
{
    MuxReg top(nullptr, "top", 8, 4);
    auto elab = top.elaborate();
    std::string dot = GraphTool().toDot(*elab, 2);
    EXPECT_NE(dot.find("digraph \"top\""), std::string::npos);
    EXPECT_NE(dot.find("Register_8"), std::string::npos);
    EXPECT_NE(dot.find("Mux_8_4"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    // Depth 0 collapses everything into one box: no edges.
    std::string flat = GraphTool().toDot(*elab, 0);
    EXPECT_EQ(flat.find("->"), std::string::npos);
}

} // namespace
} // namespace cmtl
