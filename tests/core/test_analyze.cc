/**
 * @file
 * Tests for the IR static analyzer: one deliberately broken model per
 * check family (asserting the exact check id), the suppression /
 * severity-override API, the shared constant folder and bound
 * analysis, and clean-corpus runs over the shipped tile and mesh
 * designs (which must produce zero errors).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>

#include "core/analyze.h"
#include "core/lint.h"
#include "net/mesh.h"
#include "test_models.h"
#include "tile/cache.h"
#include "tile/dotprod.h"
#include "tile/proc.h"
#include "tile/tile.h"

namespace cmtl {
namespace {

bool
hasCheck(const std::vector<LintIssue> &issues, const std::string &check)
{
    for (const auto &issue : issues)
        if (issue.check == check)
            return true;
    return false;
}

const LintIssue *
findCheck(const std::vector<LintIssue> &issues, const std::string &check)
{
    for (const auto &issue : issues)
        if (issue.check == check)
            return &issue;
    return nullptr;
}

int
countErrors(const std::vector<LintIssue> &issues)
{
    int n = 0;
    for (const auto &issue : issues)
        if (issue.severity == LintSeverity::Error)
            ++n;
    return n;
}

// ------------------------------------------------- broken models

/** Comb if without else: 'out' holds its value when en is low. */
struct LatchModel : Model
{
    InPort en;
    OutPort out;

    LatchModel() : Model(nullptr, "top"), en(this, "en", 1),
                   out(this, "out", 8)
    {
        auto &b = combinational("comb");
        b.if_(rd(en), [&] { b.assign(out, 1); });
    }
};

TEST(Analyze, LatchInferredInCombWithoutElse)
{
    LatchModel top;
    auto elab = top.elaborate();
    auto issues = analyzeIr(*elab);

    const LintIssue *issue = findCheck(issues, "latch-inferred");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
    // The finding names the signal and the offending path.
    EXPECT_NE(issue->message.find("top.out"), std::string::npos)
        << issue->message;
    EXPECT_NE(issue->message.find("top.en"), std::string::npos)
        << issue->message;
}

TEST(Analyze, NoLatchWhenBothBranchesAssign)
{
    struct M : Model
    {
        InPort en;
        OutPort out;
        M() : Model(nullptr, "top"), en(this, "en", 1),
              out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.if_(rd(en), [&] { b.assign(out, 1); },
                  [&] { b.assign(out, 2); });
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_FALSE(hasCheck(issues, "latch-inferred"))
        << LintTool::format(issues);
}

TEST(Analyze, DefaultBeforeIfPreventsLatch)
{
    struct M : Model
    {
        InPort en;
        OutPort out;
        M() : Model(nullptr, "top"), en(this, "en", 1),
              out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.assign(out, 0);
            b.if_(rd(en), [&] { b.assign(out, 1); });
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_FALSE(hasCheck(issues, "latch-inferred"))
        << LintTool::format(issues);
}

TEST(Analyze, SequentialBlocksNeverInferLatches)
{
    // Partial assignment is the whole point of sequential state.
    testmodels::Counter top(nullptr, "top", 8);
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_FALSE(hasCheck(issues, "latch-inferred"))
        << LintTool::format(issues);
}

/** Swaps the temp definition after its use. */
struct TempOrderModel : Model
{
    InPort in_;
    OutPort out;

    TempOrderModel() : Model(nullptr, "top"), in_(this, "in_", 8),
                       out(this, "out", 8)
    {
        auto &b = combinational("comb");
        IrExpr t = b.let("t", rd(in_));
        b.assign(out, t);
        std::swap(b.block()->stmts[0], b.block()->stmts[1]);
    }
};

TEST(Analyze, TempReadBeforeWrite)
{
    TempOrderModel top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "temp-read-before-write");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
    EXPECT_NE(issue->message.find("'t'"), std::string::npos)
        << issue->message;
}

TEST(Analyze, CombReadOfOwnWriteBeforeAssignment)
{
    struct M : Model
    {
        InPort in_;
        OutPort mid, out;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              mid(this, "mid", 8), out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.assign(out, rd(mid)); // reads mid before writing it
            b.assign(mid, rd(in_));
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "comb-read-own-write");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Warning);
    EXPECT_NE(issue->message.find("top.mid"), std::string::npos)
        << issue->message;
}

TEST(Analyze, CombReadAfterOwnWriteIsClean)
{
    struct M : Model
    {
        InPort in_;
        OutPort mid, out;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              mid(this, "mid", 8), out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.assign(mid, rd(in_));
            b.assign(out, rd(mid)); // mid fully assigned by now
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_FALSE(hasCheck(issues, "comb-read-own-write"))
        << LintTool::format(issues);
}

/** Hand-builds a slice the IrExpr API would reject at build time. */
struct BadSliceModel : Model
{
    InPort in_;
    OutPort out;

    BadSliceModel() : Model(nullptr, "top"), in_(this, "in_", 8),
                      out(this, "out", 4)
    {
        auto &b = combinational("comb");
        auto n = std::make_shared<IrExprNode>();
        n->kind = IrExprNode::Kind::Slice;
        n->nbits = 4;
        n->lsb = 6; // bits [9:6] of an 8-bit operand
        n->args = {rd(in_).node()};
        b.assign(out, IrExpr(n));
    }
};

TEST(Analyze, SliceOutOfRange)
{
    BadSliceModel top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "slice-out-of-range");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
}

TEST(Analyze, ConstantIndexBeyondDepthIsError)
{
    struct M : Model
    {
        OutPort out;
        MemArray arr;
        M() : Model(nullptr, "top"), out(this, "out", 8),
              arr(this, "arr", 8, 4)
        {
            auto &b = combinational("comb");
            b.assign(out, aread(arr, lit(3, 7))); // depth is 4
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "index-out-of-range");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
}

TEST(Analyze, WideIndexMayExceedDepthIsWarning)
{
    struct M : Model
    {
        InPort idx;
        OutPort out;
        MemArray arr;
        M() : Model(nullptr, "top"), idx(this, "idx", 3),
              out(this, "out", 8), arr(this, "arr", 8, 4)
        {
            auto &b = combinational("comb");
            b.assign(out, aread(arr, rd(idx))); // bound 7 >= depth 4
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "index-may-exceed");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Warning);
    EXPECT_FALSE(hasCheck(issues, "index-out-of-range"));
}

TEST(Analyze, NarrowedIndexIsClean)
{
    struct M : Model
    {
        InPort idx;
        OutPort out;
        MemArray arr;
        M() : Model(nullptr, "top"), idx(this, "idx", 8),
              out(this, "out", 8), arr(this, "arr", 8, 4)
        {
            auto &b = combinational("comb");
            // Slicing down to 2 bits proves the index is in range.
            b.assign(out, aread(arr, rd(idx).slice(0, 2)));
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_FALSE(hasCheck(issues, "index-may-exceed"))
        << LintTool::format(issues);
    EXPECT_FALSE(hasCheck(issues, "index-out-of-range"));
}

TEST(Analyze, TruncatingAssignIsFlaggedWithWidths)
{
    struct M : Model
    {
        InPort in_;
        OutPort out;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              out(this, "out", 4)
        {
            auto &b = combinational("comb");
            b.assign(out, rd(in_)); // 8-bit value into 4-bit target
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "lossy-truncation");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Warning);
    EXPECT_NE(issue->message.find("8-bit"), std::string::npos)
        << issue->message;
    EXPECT_NE(issue->message.find("4 bits"), std::string::npos)
        << issue->message;
}

TEST(Analyze, ProvablyFittingAssignIsNotTruncation)
{
    struct M : Model
    {
        InPort in_;
        OutPort out;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              out(this, "out", 4)
        {
            auto &b = combinational("comb");
            // Value bound 15 fits 4 bits even though widths differ.
            b.assign(out, rd(in_) & lit(8, 0xf));
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_FALSE(hasCheck(issues, "lossy-truncation"))
        << LintTool::format(issues);
}

TEST(Analyze, ConstantFalseBranchIsDeadLogic)
{
    struct M : Model
    {
        OutPort out;
        M() : Model(nullptr, "top"), out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.if_(lit(1, 0), [&] { b.assign(out, 1); },
                  [&] { b.assign(out, 2); });
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    const LintIssue *issue = findCheck(issues, "constant-condition");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Warning);
    // The dead 'then' branch must not count as a missing assignment.
    EXPECT_FALSE(hasCheck(issues, "latch-inferred"))
        << LintTool::format(issues);
}

TEST(Analyze, ConstantTrueSingleArmIfDoesNotLatch)
{
    struct M : Model
    {
        OutPort out;
        M() : Model(nullptr, "top"), out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.if_(lit(1, 1), [&] { b.assign(out, 1); });
        }
    } top;
    auto issues = analyzeIr(*top.elaborate());
    EXPECT_TRUE(hasCheck(issues, "constant-condition"))
        << LintTool::format(issues);
    // Condition is always true, so 'out' is assigned on every path.
    EXPECT_FALSE(hasCheck(issues, "latch-inferred"))
        << LintTool::format(issues);
}

TEST(Analyze, NonblockingAssignInCombIsError)
{
    struct M : Model
    {
        InPort in_;
        OutPort out;
        BlockBuilder *b = nullptr;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              out(this, "out", 8)
        {
            b = &combinational("comb");
            b->assign(out, rd(in_));
        }
    } top;
    auto elab = top.elaborate();
    // The builder cannot produce this; corrupt the IR directly.
    top.b->block()->stmts[0].nonblocking = true;
    auto issues = analyzeIr(*elab);
    const LintIssue *issue = findCheck(issues, "nonblocking-in-comb");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
}

TEST(Analyze, BlockingAssignInSeqIsError)
{
    struct M : Model
    {
        InPort in_;
        OutPort out;
        BlockBuilder *b = nullptr;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              out(this, "out", 8)
        {
            b = &tickRtl("seq");
            b->assign(out, rd(in_));
        }
    } top;
    auto elab = top.elaborate();
    top.b->block()->stmts[0].nonblocking = false;
    auto issues = analyzeIr(*elab);
    const LintIssue *issue = findCheck(issues, "blocking-in-seq");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
}

TEST(Analyze, ArrayWriteInCombIsError)
{
    struct M : Model
    {
        InPort in_;
        MemArray arr;
        BlockBuilder *b = nullptr;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              arr(this, "arr", 8, 4)
        {
            b = &tickRtl("seq");
            b->writeArray(arr, lit(2, 0), rd(in_));
        }
    } top;
    auto elab = top.elaborate();
    // writeArray is seq-only at build time; flip the block after.
    top.b->block()->sequential = false;
    auto issues = analyzeIr(*elab);
    const LintIssue *issue = findCheck(issues, "awrite-in-comb");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
}

// ------------------------------------------- suppression / severity

TEST(AnalyzeOptions, SuppressDropsAllFindingsOfACheck)
{
    LatchModel top;
    auto elab = top.elaborate();
    ASSERT_TRUE(hasCheck(analyzeIr(*elab), "latch-inferred"));

    AnalyzeOptions options;
    options.suppress("latch-inferred");
    EXPECT_FALSE(hasCheck(analyzeIr(*elab, options), "latch-inferred"));
}

TEST(AnalyzeOptions, SeverityOverridePromotesWarningToError)
{
    struct M : Model
    {
        InPort in_;
        OutPort out;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              out(this, "out", 4)
        {
            auto &b = combinational("comb");
            b.assign(out, rd(in_));
        }
    } top;
    auto elab = top.elaborate();

    AnalyzeOptions options;
    options.setSeverity("lossy-truncation", LintSeverity::Error);
    auto issues = analyzeIr(*elab, options);
    const LintIssue *issue = findCheck(issues, "lossy-truncation");
    ASSERT_NE(issue, nullptr);
    EXPECT_EQ(issue->severity, LintSeverity::Error);
}

TEST(AnalyzeOptions, LintToolForwardsSuppressionToStructuralChecks)
{
    // A floating wire trips undriven-net unless suppressed.
    struct M : Model
    {
        Wire w;
        OutPort out;
        M() : Model(nullptr, "top"), w(this, "w", 8),
              out(this, "out", 8)
        {
            auto &b = combinational("comb");
            b.assign(out, rd(w));
        }
    } top;
    auto elab = top.elaborate();
    ASSERT_TRUE(hasCheck(LintTool().run(*elab), "undriven-net"));

    LintTool quiet;
    quiet.suppress("undriven-net");
    EXPECT_FALSE(hasCheck(quiet.run(*elab), "undriven-net"));
}

TEST(AnalyzeOptions, CatalogCoversEveryEmittedCheckId)
{
    // Every catalog entry has a non-empty id and summary, and ids are
    // unique — the suppression API is keyed on them.
    std::set<std::string> seen;
    for (const AnalyzeCheck &check : analyzeCheckCatalog()) {
        ASSERT_NE(check.id, nullptr);
        EXPECT_FALSE(std::string(check.id).empty());
        EXPECT_FALSE(std::string(check.summary).empty());
        EXPECT_TRUE(seen.insert(check.id).second)
            << "duplicate check id " << check.id;
    }
    EXPECT_GE(seen.size(), 11u);
}

// ------------------------------------------------- hierarchical nets

TEST(Analyze, StructuralFindingsNameHierarchicalPath)
{
    struct M : Model
    {
        OutPort out;
        testmodels::Register reg_;
        M() : Model(nullptr, "top"), out(this, "out", 8),
              reg_(this, "reg_", 8)
        {
            connect(reg_.out, out); // reg_.in_ left floating
        }
    } top;
    auto elab = top.elaborate();
    auto issues = LintTool().run(*elab);
    const LintIssue *issue = findCheck(issues, "undriven-net");
    ASSERT_NE(issue, nullptr) << LintTool::format(issues);
    // The finding reports the net's hierarchical model path.
    EXPECT_NE(issue->message.find("top.reg_.in_"), std::string::npos)
        << issue->message;
}

// --------------------------------------------- const fold / bounds

TEST(ConstFold, FoldsArithmeticWithSimulatorSemantics)
{
    auto v = irConstFold((lit(8, 3) + lit(8, 4)).node());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->toUint64(), 7u);

    // Wrap-around must match the simulator, not host arithmetic.
    v = irConstFold((lit(8, 255) + lit(8, 1)).node());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->toUint64(), 0u);

    v = irConstFold((lit(8, 5) == lit(8, 5)).node());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->nbits(), 1);
    EXPECT_EQ(v->toUint64(), 1u);

    v = irConstFold(mux(lit(1, 0), lit(8, 1), lit(8, 2)).node());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->toUint64(), 2u);
}

TEST(ConstFold, DoesNotFoldRuntimeState)
{
    struct M : Model
    {
        InPort in_;
        MemArray arr;
        M() : Model(nullptr, "top"), in_(this, "in_", 8),
              arr(this, "arr", 8, 4)
        {}
    } top;
    EXPECT_FALSE(irConstFold(rd(top.in_).node()).has_value());
    EXPECT_FALSE(
        irConstFold((rd(top.in_) + lit(8, 1)).node()).has_value());
    EXPECT_FALSE(
        irConstFold(aread(top.arr, lit(2, 0)).node()).has_value());
}

TEST(MaxBound, TracksConstantsWidthsAndRefinements)
{
    struct M : Model
    {
        InPort narrow, wide;
        M() : Model(nullptr, "top"), narrow(this, "narrow", 3),
              wide(this, "wide", 8)
        {}
    } top;

    EXPECT_EQ(irMaxBound(lit(8, 5).node()), 5u);
    EXPECT_EQ(irMaxBound(rd(top.narrow).node()), 7u);
    EXPECT_EQ(irMaxBound(rd(top.wide).node()), 255u);
    // Slices and masks refine the bound below the width's maximum.
    EXPECT_EQ(irMaxBound(rd(top.wide).slice(0, 2).node()), 3u);
    EXPECT_EQ(irMaxBound((rd(top.wide) & lit(8, 0x7)).node()), 7u);
    // Comparisons are 1-bit.
    EXPECT_EQ(irMaxBound((rd(top.wide) == lit(8, 3)).node()), 1u);
}

// ------------------------------------------------- clean corpus

void
expectErrorFree(Model &model, const char *what)
{
    auto elab = model.elaborate();
    auto issues = LintTool().run(*elab);
    std::vector<LintIssue> errors;
    for (const auto &issue : issues)
        if (issue.severity == LintSeverity::Error)
            errors.push_back(issue);
    EXPECT_EQ(countErrors(issues), 0)
        << what << ":\n" << LintTool::format(errors);
}

TEST(AnalyzeCorpus, TileIsErrorFreeAtEveryLevel)
{
    {
        tile::Tile t("tile_fl", tile::Level::FL, tile::Level::FL,
                     tile::Level::FL);
        expectErrorFree(t, "tile FL");
    }
    {
        tile::Tile t("tile_cl", tile::Level::CL, tile::Level::CL,
                     tile::Level::CL);
        expectErrorFree(t, "tile CL");
    }
    {
        tile::Tile t("tile_rtl", tile::Level::RTL, tile::Level::RTL,
                     tile::Level::RTL);
        expectErrorFree(t, "tile RTL");
    }
}

TEST(AnalyzeCorpus, RtlComponentsAreErrorFree)
{
    {
        tile::CacheRTL c(nullptr, "cache", 16);
        expectErrorFree(c, "CacheRTL");
    }
    {
        tile::DotProductRTL d(nullptr, "dotprod");
        expectErrorFree(d, "DotProductRTL");
    }
    {
        tile::ProcRTL p(nullptr, "proc");
        expectErrorFree(p, "ProcRTL");
    }
    {
        tile::ProcRTL5 p(nullptr, "proc5");
        expectErrorFree(p, "ProcRTL5");
    }
}

TEST(AnalyzeCorpus, MeshNetworkIsErrorFree)
{
    net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
    expectErrorFree(mesh, "MeshNetworkRTL 2x2");
}

} // namespace
} // namespace cmtl
