/**
 * Unified Backend API: cross-backend golden equivalence.
 *
 * The contract under test: every backend the `SimConfig::fromString`
 * front door can name — tree-walk interpreter, optimized interpreter,
 * bytecode, per-block compiled C++, whole-design compiled C++ with
 * tiered warm-up, and the boxed-host hybrids — simulates the same
 * design to byte-identical state and byte-identical VCD streams, at
 * any supported thread count, including across the bytecode->native
 * tier boundary of cpp-design. Plus: canonical-name round-trips,
 * deprecated-enum aliasing, report/SimScope naming, SimOptions CLI
 * parsing, and the JIT cache LRU size cap.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/jit_cpp.h"
#include "core/psim.h"
#include "core/scope.h"
#include "core/sim.h"
#include "core/stats.h"
#include "core/vcd.h"
#include "net/traffic.h"
#include "stdlib/options.h"
#include "tile/multitile.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

bool
needsCompiler(const std::string &backend)
{
    return backend.find("cpp") != std::string::npos;
}

/** All canonical backend names the front door accepts. */
std::vector<std::string>
allBackends()
{
    return {"interp",     "optinterp",       "bytecode",
            "cpp-block",  "cpp-design",      "interp+bytecode",
            "interp+cpp-block"};
}

// ------------------------------------------------ name round-trips

TEST(BackendNames, FromStringToStringRoundTrips)
{
    for (const std::string &name : allBackends())
        EXPECT_EQ(SimConfig::fromString(name).toString(), name) << name;
}

TEST(BackendNames, DeprecatedAliasesResolve)
{
    EXPECT_EQ(SimConfig::fromString("cpp").toString(), "cpp-block");
    EXPECT_EQ(SimConfig::fromString("interp+cpp").toString(),
              "interp+cpp-block");
}

TEST(BackendNames, UnknownNameThrows)
{
    EXPECT_THROW(SimConfig::fromString("pypy"), std::invalid_argument);
    EXPECT_THROW(SimConfig::fromString(""), std::invalid_argument);
}

TEST(BackendNames, LegacyEnumPairsGetCanonicalNames)
{
    // Old call sites set exec/spec only; resolve() must give their
    // combination the same canonical name the new front door uses.
    auto name = [](ExecMode e, SpecMode s) {
        SimConfig cfg;
        cfg.exec = e;
        cfg.spec = s;
        return cfg.toString();
    };
    EXPECT_EQ(name(ExecMode::Interp, SpecMode::None), "interp");
    EXPECT_EQ(name(ExecMode::OptInterp, SpecMode::None), "optinterp");
    EXPECT_EQ(name(ExecMode::OptInterp, SpecMode::Bytecode), "bytecode");
    EXPECT_EQ(name(ExecMode::OptInterp, SpecMode::Cpp), "cpp-block");
    EXPECT_EQ(name(ExecMode::Interp, SpecMode::Bytecode),
              "interp+bytecode");
    EXPECT_EQ(name(ExecMode::Interp, SpecMode::Cpp), "interp+cpp-block");
}

TEST(BackendNames, ExplicitBackendProjectsOntoLegacyEnums)
{
    // Code that still reads the deprecated fields must observe a
    // configuration consistent with the chosen backend.
    SimConfig cfg = SimConfig::fromString("cpp-design");
    EXPECT_EQ(cfg.exec, ExecMode::OptInterp);
    EXPECT_EQ(cfg.spec, SpecMode::Cpp);
    cfg = SimConfig::fromString("interp+bytecode");
    EXPECT_EQ(cfg.exec, ExecMode::Interp);
    EXPECT_EQ(cfg.spec, SpecMode::Bytecode);
}

// -------------------------------------------- report/scope naming

TEST(BackendNames, SimulatorReportAndScopeNameTheBackend)
{
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 4,
                                                4, 0.2, 3);
    SimulationTool sim(top->elaborate(),
                       SimConfig::fromString("optinterp"));
    EXPECT_NE(simulatorReport(sim).find("backend optinterp"),
              std::string::npos);

    SimScope scope(sim);
    sim.cycle(8);
    std::string snap = scope.jsonSnapshot();
    scope.detach();
    EXPECT_NE(snap.find("\"backend\":\"optinterp\""), std::string::npos)
        << snap;
}

// --------------------------------------- cross-backend equivalence

void
expectSameState(Simulator &a, Simulator &b, const std::string &ctx)
{
    const auto &nets = a.elaboration().nets;
    for (const Net &net : nets) {
        ASSERT_EQ(a.readNet(net.id), b.readNet(net.id))
            << ctx << ": net " << net.name << " diverged at cycle "
            << a.numCycles();
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

SimConfig
backendCfg(const std::string &backend, int threads)
{
    SimConfig cfg = SimConfig::fromString(backend);
    cfg.threads = threads;
    return cfg;
}

class BackendEquiv
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    void
    SetUp() override
    {
        auto [backend, threads] = GetParam();
        if (needsCompiler(backend) && !CppJit::compilerAvailable())
            GTEST_SKIP() << "no host compiler";
        // The parallel kernel requires dense arena storage; boxed
        // (interp-hosted) backends exist only on the sequential one.
        if (threads > 1 &&
            backendCfg(backend, threads).exec == ExecMode::Interp)
            GTEST_SKIP() << "boxed backends are sequential-only";
    }
};

TEST_P(BackendEquiv, MeshRtlStateAndVcdMatchGolden)
{
    auto [backend, threads] = GetParam();
    const int nrouters = 16, cycles = 200;
    auto makeTop = [&] {
        return std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                nrouters, 4, 0.3, 11);
    };
    // Unique per parameterization: ctest may run tests in parallel.
    const std::string tag =
        backend + "_t" + std::to_string(threads) + "_" +
        std::to_string(::getpid());
    const std::string golden_path =
        ::testing::TempDir() + "backend_golden_" + tag + ".vcd";
    const std::string path =
        ::testing::TempDir() + "backend_run_" + tag + ".vcd";

    // Golden: the boxed tree-walk interpreter, the semantic reference.
    auto gt = makeTop();
    auto golden = makeSimulator(gt->elaborate(), backendCfg("interp", 1));
    {
        VcdWriter vcd(*golden, golden_path);
        golden->reset();
        golden->cycle(cycles);
        vcd.close();
    }

    auto tt = makeTop();
    auto sim = makeSimulator(tt->elaborate(),
                             backendCfg(backend, threads));
    {
        VcdWriter vcd(*sim, path);
        sim->reset();
        sim->cycle(cycles);
        vcd.close();
    }

    std::string ctx = backend + " threads=" + std::to_string(threads);
    EXPECT_EQ(sim->numCycles(), golden->numCycles());
    expectSameState(*golden, *sim, ctx);
    std::string a = slurp(golden_path), b = slurp(path);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "VCD streams differ: " << ctx;
    std::remove(golden_path.c_str());
    std::remove(path.c_str());
}

TEST_P(BackendEquiv, MultiTileStateMatchesGolden)
{
    using namespace tile;
    auto [backend, threads] = GetParam();
    Workload w = makeMvmultMultiTile(4, /*use_accel=*/false);
    auto makeSys = [&] {
        auto sys = std::make_unique<MultiTileSystem>(
            "sys", std::vector<std::array<Level, 3>>{
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL},
                       {Level::CL, Level::CL, Level::CL}});
        sys->loadProgram(w.image);
        loadMvmultData(sys->memNode(), w);
        return sys;
    };

    auto sys_a = makeSys();
    auto sys_b = makeSys();
    auto golden =
        makeSimulator(sys_a->elaborate(), backendCfg("interp", 1));
    auto sim =
        makeSimulator(sys_b->elaborate(), backendCfg(backend, threads));

    golden->reset();
    sim->reset();
    const int cycles = 2000;
    golden->cycle(cycles);
    sim->cycle(cycles);

    std::string ctx = backend + " threads=" + std::to_string(threads);
    EXPECT_EQ(sim->numCycles(), golden->numCycles());
    expectSameState(*golden, *sim, ctx);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendEquiv,
    ::testing::Combine(::testing::ValuesIn(allBackends()),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &i) {
        std::string name = std::get<0>(i.param) + "_t" +
                           std::to_string(std::get<1>(i.param));
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

// --------------------------------------------- mid-run tier swap

/**
 * Force a genuine mid-run bytecode->native swap: with the on-disk
 * cache disabled the background g++ run takes real wall time, so the
 * first cycles provably execute on the bytecode warm-up tier. The
 * simulation must agree with the reference every cycle, the swap must
 * land at a cycle boundary > 0, and the cycle count must be exactly
 * the number of cycles driven.
 */
TEST(BackendTierSwap, MidRunSwapKeepsStateAndCycleCount)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";

    auto ta = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                               4, 0.3, 5);
    auto tb = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                               4, 0.3, 5);
    auto golden =
        makeSimulator(ta->elaborate(), backendCfg("optinterp", 1));

    SimConfig cfg = SimConfig::fromString("cpp-design");
    cfg.jit_cache = false; // force a real (slow) background compile
    SimulationTool sim(tb->elaborate(), cfg);
    ASSERT_TRUE(sim.tierPending()) << "compile finished suspiciously "
                                      "fast; cannot exercise the swap";
    ASSERT_TRUE(sim.specStats().tiered);
    ASSERT_EQ(sim.specStats().tierSwapCycle, -1);

    golden->reset();
    sim.reset();
    uint64_t driven = sim.numCycles(); // reset() itself runs a cycle
    uint64_t warm = 0;
    // Warm-up tier: lockstep until the background compile lands.
    while (sim.tierPending() && warm < 2000000) {
        golden->cycle(32);
        sim.cycle(32);
        driven += 32;
        warm += 32;
        expectSameState(*golden, sim, "warm-up tier");
    }
    ASSERT_FALSE(sim.tierPending()) << "compile never finished";
    ASSERT_GT(warm, 0u) << "no cycles ran on the warm-up tier";

    // Native tier: the swap happened at a cycle boundary mid-run.
    int64_t swap = sim.specStats().tierSwapCycle;
    EXPECT_GT(swap, 0);
    EXPECT_LE(swap, static_cast<int64_t>(driven) + 32);

    golden->cycle(200);
    sim.cycle(200);
    driven += 200;
    EXPECT_EQ(sim.numCycles(), driven);
    EXPECT_EQ(sim.numCycles(), golden->numCycles());
    expectSameState(*golden, sim, "native tier");
}

/** Same forcing on the parallel kernel: per-island fused modules. */
TEST(BackendTierSwap, ParSimMidRunSwapBitIdentical)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";

    auto ta = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                               4, 0.3, 9);
    auto tb = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 16,
                                               4, 0.3, 9);
    auto golden =
        makeSimulator(ta->elaborate(), backendCfg("optinterp", 1));

    SimConfig cfg = backendCfg("cpp-design", 4);
    cfg.jit_cache = false;
    ParSimulationTool sim(tb->elaborate(), cfg);
    ASSERT_TRUE(sim.tierPending());

    golden->reset();
    sim.reset();
    uint64_t driven = sim.numCycles(); // reset() itself runs a cycle
    uint64_t warm = 0;
    while (sim.tierPending() && warm < 2000000) {
        golden->cycle(32);
        sim.cycle(32);
        driven += 32;
        warm += 32;
        expectSameState(*golden, sim, "parsim warm-up tier");
    }
    ASSERT_FALSE(sim.tierPending()) << "compile never finished";
    EXPECT_GT(sim.specStats().tierSwapCycle, 0);
    // Per-island fused codegen: every island gets its own translation
    // unit with at least a flop module, so the adopted tier carries at
    // least nislands compiled units (and a real compile, not a hit —
    // the cache was disabled above).
    EXPECT_GE(sim.specStats().numGroups, sim.plan().nislands);
    EXPECT_FALSE(sim.specStats().cacheHit);
    EXPECT_GT(sim.specStats().compileSeconds, 0.0);

    golden->cycle(200);
    sim.cycle(200);
    driven += 200;
    EXPECT_EQ(sim.numCycles(), driven);
    expectSameState(*golden, sim, "parsim native tier");
}

// ------------------------------------------------ JIT cache LRU cap

class JitCacheLru : public ::testing::Test
{
  protected:
    std::string dir_;

    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "cmtl_lru_" +
               std::to_string(::getpid());
        ::mkdir(dir_.c_str(), 0755);
    }

    void
    TearDown() override
    {
        // Best-effort cleanup; leftover files only waste tmp space.
        for (const char *f : {"cmtl_a.so", "cmtl_b.so", "cmtl_c.so",
                              "other.so", "cmtl_d.txt"})
            std::remove((dir_ + "/" + f).c_str());
        ::rmdir(dir_.c_str());
    }

    std::string
    makeFile(const std::string &name, size_t bytes, int age_seconds)
    {
        std::string path = dir_ + "/" + name;
        std::ofstream(path) << std::string(bytes, 'x');
        struct timeval now;
        ::gettimeofday(&now, nullptr);
        struct timeval times[2] = {now, now};
        times[0].tv_sec -= age_seconds;
        times[1].tv_sec -= age_seconds;
        ::utimes(path.c_str(), times);
        return path;
    }

    bool
    exists(const std::string &name) const
    {
        struct stat st;
        return ::stat((dir_ + "/" + name).c_str(), &st) == 0;
    }
};

TEST_F(JitCacheLru, EvictsOldestEntriesUntilUnderCap)
{
    makeFile("cmtl_a.so", 1000, 300); // oldest
    makeFile("cmtl_b.so", 1000, 200);
    std::string keep = makeFile("cmtl_c.so", 1000, 100);
    CppJit::evictCache(dir_, 2500, keep);
    EXPECT_FALSE(exists("cmtl_a.so")); // only the oldest goes
    EXPECT_TRUE(exists("cmtl_b.so"));
    EXPECT_TRUE(exists("cmtl_c.so"));
}

TEST_F(JitCacheLru, KeepsTheJustPublishedLibraryAndForeignFiles)
{
    makeFile("cmtl_a.so", 1000, 300);
    makeFile("other.so", 1000, 400);   // not ours: never touched
    makeFile("cmtl_d.txt", 1000, 400); // not a library: never touched
    std::string keep = makeFile("cmtl_c.so", 1000, 100);
    CppJit::evictCache(dir_, 0, keep);
    EXPECT_FALSE(exists("cmtl_a.so"));
    EXPECT_TRUE(exists("cmtl_c.so")) << "evicted the published library";
    EXPECT_TRUE(exists("other.so"));
    EXPECT_TRUE(exists("cmtl_d.txt"));
}

TEST_F(JitCacheLru, UnderCapIsUntouched)
{
    makeFile("cmtl_a.so", 100, 300);
    makeFile("cmtl_b.so", 100, 200);
    CppJit::evictCache(dir_, 1 << 20, "");
    EXPECT_TRUE(exists("cmtl_a.so"));
    EXPECT_TRUE(exists("cmtl_b.so"));
}

TEST(JitCacheCap, EnvOverridesDefault)
{
    ::unsetenv("CMTL_JIT_CACHE_MAX_MB");
    EXPECT_EQ(CppJit::cacheMaxBytes(), 256ull << 20);
    ::setenv("CMTL_JIT_CACHE_MAX_MB", "7", 1);
    EXPECT_EQ(CppJit::cacheMaxBytes(), 7ull << 20);
    ::setenv("CMTL_JIT_CACHE_MAX_MB", "garbage", 1);
    EXPECT_EQ(CppJit::cacheMaxBytes(), 256ull << 20);
    ::unsetenv("CMTL_JIT_CACHE_MAX_MB");
}

TEST(JitCacheCap, PublishTrimsTheCacheDirectory)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";
    std::string dir = ::testing::TempDir() + "cmtl_lru_e2e_" +
                      std::to_string(::getpid());
    ::setenv("CMTL_JIT_CACHE_MAX_MB", "0", 1);
    const char *src_a = "#include <cstdint>\n// variant a\n"
                        "extern \"C\" void cmtl_grp_0(uint64_t *) {}\n";
    const char *src_b = "#include <cstdint>\n// variant b\n"
                        "extern \"C\" void cmtl_grp_0(uint64_t *) {}\n";
    CppJit jit(dir, /*use_cache=*/true);
    std::string so_a = jit.cachePathFor(src_a);
    std::string so_b = jit.cachePathFor(src_b);
    {
        CppJitLibrary lib_a = jit.compile(src_a, 1);
    }
    struct stat st;
    EXPECT_EQ(::stat(so_a.c_str(), &st), 0) << "publish failed";
    {
        // Cap 0: publishing B must evict A (LRU) but keep B itself.
        CppJitLibrary lib_b = jit.compile(src_b, 1);
    }
    EXPECT_NE(::stat(so_a.c_str(), &st), 0) << "A not evicted";
    EXPECT_EQ(::stat(so_b.c_str(), &st), 0) << "B wrongly evicted";
    ::unsetenv("CMTL_JIT_CACHE_MAX_MB");
    std::remove(so_b.c_str());
    ::rmdir(dir.c_str());
}

// ------------------------------------------------ SimOptions parse

std::vector<char *>
argvOf(std::vector<std::string> &args)
{
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    return argv;
}

TEST(SimOptionsParse, CommonOptionsAndPositionals)
{
    std::vector<std::string> args = {"prog",      "--backend=cpp-design",
                                     "--threads", "4",
                                     "rtl",       "64",
                                     "--profile=json"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(opts.backend_set);
    EXPECT_EQ(opts.cfg.toString(), "cpp-design");
    // The CLI clamps to the hardware thread count, so the expected
    // value depends on the host running the test.
    unsigned hw = std::thread::hardware_concurrency();
    int want = (hw > 0 && hw < 4) ? static_cast<int>(hw) : 4;
    EXPECT_EQ(opts.cfg.threads, want);
    EXPECT_EQ(opts.threads, want);
    EXPECT_EQ(opts.level, "rtl");
    EXPECT_TRUE(opts.profile);
    EXPECT_TRUE(opts.profile_json);
    EXPECT_EQ(opts.intArg(16), 64);
    ASSERT_EQ(opts.positional.size(), 1u);
}

TEST(SimOptionsParse, ThreadsClampToHardwareConcurrency)
{
    // An absurd request must come back clamped to the host (the
    // warning goes to stderr); programmatic SimConfig::threads is
    // intentionally NOT clamped, so only the CLI path is tested.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        GTEST_SKIP() << "hardware_concurrency unknown on this host";
    std::vector<std::string> args = {"prog", "--threads=4096"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(opts.threads, static_cast<int>(hw));
    EXPECT_EQ(opts.cfg.threads, static_cast<int>(hw));
}

TEST(SimOptionsParse, DefaultsWhenNothingGiven)
{
    ::unsetenv("CMTL_BENCH_FULL");
    std::vector<std::string> args = {"prog"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_FALSE(opts.backend_set);
    EXPECT_EQ(opts.cfg.toString(), "optinterp");
    EXPECT_EQ(opts.threads, 1);
    EXPECT_FALSE(opts.profile);
    EXPECT_FALSE(opts.full);
    EXPECT_EQ(opts.intArg(16), 16);
}

TEST(SimOptionsParseDeath, UnknownBackendExits2)
{
    std::vector<std::string> args = {"prog", "--backend=pypy"};
    auto argv = argvOf(args);
    EXPECT_EXIT(cmtl::stdlib::SimOptions::parse(
                    static_cast<int>(argv.size()), argv.data()),
                ::testing::ExitedWithCode(2), "unknown backend");
}

TEST(SimOptionsParseDeath, UnknownFlagExits2)
{
    // Silent ignores mask typos like --thread=4; strict parsing turns
    // them into a diagnostic pointing at --help.
    std::vector<std::string> args = {"prog", "--thread=4"};
    auto argv = argvOf(args);
    EXPECT_EXIT(cmtl::stdlib::SimOptions::parse(
                    static_cast<int>(argv.size()), argv.data()),
                ::testing::ExitedWithCode(2),
                "unknown option '--thread=4'.*--help");
}

TEST(SimOptionsParseDeath, HelpPrintsTheOptionTableAndExits0)
{
    std::vector<std::string> args = {"prog", "--help"};
    auto argv = argvOf(args);
    EXPECT_EXIT(
        {
            // --help prints to stdout; route it to stderr so the death
            // test's matcher sees it.
            ::dup2(2, 1);
            cmtl::stdlib::SimOptions::parse(
                static_cast<int>(argv.size()), argv.data());
        },
        ::testing::ExitedWithCode(0), "--checkpoint=<path\\[:n\\]>");
}

TEST(SimOptionsParseDeath, BadCyclesValueExits2)
{
    std::vector<std::string> args = {"prog", "--cycles=soon"};
    auto argv = argvOf(args);
    EXPECT_EXIT(cmtl::stdlib::SimOptions::parse(
                    static_cast<int>(argv.size()), argv.data()),
                ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(SimOptionsParse, CheckpointVcdAndResumeOptions)
{
    std::vector<std::string> args = {
        "prog", "--cycles=8000", "--vcd=out.vcd",
        "--checkpoint=mesh.snap:250", "--resume=mesh.snap.5000"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(opts.cycles, 8000u);
    EXPECT_EQ(opts.vcd, "out.vcd");
    EXPECT_EQ(opts.checkpoint_path, "mesh.snap");
    EXPECT_EQ(opts.checkpoint_every, 250u);
    EXPECT_EQ(opts.resume, "mesh.snap.5000");
}

TEST(SimOptionsParse, ListenAndJobsOptions)
{
    std::vector<std::string> args = {"prog", "--listen=/tmp/sim.sock",
                                     "--jobs=4"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(opts.listen, "/tmp/sim.sock");
    EXPECT_EQ(opts.jobs, 4);
}

TEST(SimOptionsParse, ListenAndJobsDefaultOff)
{
    std::vector<std::string> args = {"prog"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(opts.listen.empty());
    EXPECT_EQ(opts.jobs, 0);
}

TEST(SimOptionsParseDeath, EmptyListenPathExits2)
{
    std::vector<std::string> args = {"prog", "--listen="};
    auto argv = argvOf(args);
    EXPECT_EXIT(cmtl::stdlib::SimOptions::parse(
                    static_cast<int>(argv.size()), argv.data()),
                ::testing::ExitedWithCode(2), "socket path");
}

TEST(SimOptionsParseDeath, NonPositiveJobsExits2)
{
    std::vector<std::string> args = {"prog", "--jobs=0"};
    auto argv = argvOf(args);
    EXPECT_EXIT(cmtl::stdlib::SimOptions::parse(
                    static_cast<int>(argv.size()), argv.data()),
                ::testing::ExitedWithCode(2), "positive integer");
}

TEST(SimOptionsParse, CheckpointIntervalDefaultsAndColonPaths)
{
    std::vector<std::string> args = {"prog", "--checkpoint=dir:v2/m.snap"};
    auto argv = argvOf(args);
    auto opts = cmtl::stdlib::SimOptions::parse(
        static_cast<int>(argv.size()), argv.data());
    // The suffix after the last ':' is not all digits, so the colon
    // belongs to the path and the interval takes its default.
    EXPECT_EQ(opts.checkpoint_path, "dir:v2/m.snap");
    EXPECT_EQ(opts.checkpoint_every, 1000u);
}

} // namespace
} // namespace cmtl
