/**
 * @file
 * Tests for the whole-design dataflow engine (dataflow.h): dead-logic
 * liveness and its simulator client (SimConfig::dead_elim), the
 * X-propagation fixpoint with witness chains, and the dead-elimination
 * equivalence contract on the mesh corpus — identical state digests
 * and byte-identical VCDs with elimination on and off, sequential and
 * parallel.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/dataflow.h"
#include "core/jit_cpp.h"
#include "core/lint.h"
#include "core/psim.h"
#include "core/sim.h"
#include "core/snap.h"
#include "core/vcd.h"
#include "net/mesh.h"
#include "net/traffic.h"
#include "test_models.h"

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

bool
hasCheck(const std::vector<LintIssue> &issues, const std::string &check)
{
    for (const auto &issue : issues)
        if (issue.check == check)
            return true;
    return false;
}

int
countCheck(const std::vector<LintIssue> &issues, const std::string &check)
{
    int n = 0;
    for (const auto &issue : issues)
        if (issue.check == check)
            ++n;
    return n;
}

// ---------------------------------------------------------- liveness

/**
 * A child whose comb chain w1 = in + 1, w2 = w1 + 1 feeds nothing the
 * top model observes: both blocks and the internal net w1 are outside
 * every sink's cone of influence.
 */
struct DeadLogicChild : Model
{
    InPort in_;
    Wire w1, w2;

    DeadLogicChild(Model *parent, const std::string &name)
        : Model(parent, name), in_(this, "in_", 8), w1(this, "w1", 8),
          w2(this, "w2", 8)
    {
        auto &b1 = combinational("c1");
        b1.assign(w1, rd(in_) + 1);
        auto &b2 = combinational("c2");
        b2.assign(w2, rd(w1) + 1);
    }
};

struct DeadLogicTop : Model
{
    InPort in_;
    OutPort out;
    DeadLogicChild child;

    DeadLogicTop()
        : Model(nullptr, "top"), in_(this, "in_", 8),
          out(this, "out", 8), child(this, "child")
    {
        connect(in_, child.in_);
        auto &b = combinational("c");
        b.assign(out, rd(in_) + 0xff);
    }
};

TEST(DataflowLiveness, UnobservedCombConeIsDead)
{
    DeadLogicTop top;
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);

    EXPECT_EQ(flow.deadBlocks, 2);
    EXPECT_EQ(static_cast<int>(flow.deadCombBlocks().size()), 2);
    // w1 is written *and* read, yet outside every cone.
    EXPECT_EQ(flow.deadNets, 1);
    EXPECT_FALSE(flow.liveNet[top.child.w1.netId()]);
    EXPECT_FALSE(flow.liveNet[top.child.w2.netId()]);
    // The observed output and its input stay live.
    EXPECT_TRUE(flow.liveNet[top.out.netId()]);
    EXPECT_TRUE(flow.liveNet[top.in_.netId()]);
}

TEST(DataflowLiveness, FindingsCarryHierarchicalPaths)
{
    DeadLogicTop top;
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);
    auto issues = dataflowLint(*elab, flow);

    EXPECT_EQ(countCheck(issues, "dead-block"), 2);
    EXPECT_EQ(countCheck(issues, "dead-net"), 1);
    bool found = false;
    for (const auto &issue : issues) {
        if (issue.check == "dead-net") {
            found = true;
            EXPECT_EQ(issue.path, "top.child.w1");
            EXPECT_EQ(issue.severity, LintSeverity::Warning);
        }
    }
    EXPECT_TRUE(found);
    // LintTool::run layers the same client on top of its other checks.
    EXPECT_TRUE(hasCheck(LintTool().run(*elab), "dead-block"));
}

TEST(DataflowLiveness, ObserveAllKeepsEverythingLive)
{
    DeadLogicTop top;
    auto elab = top.elaborate();
    DataflowOptions opts;
    opts.observe_all = true; // the semantics of an attached VCD writer
    DataflowResult flow = dataflowAnalyze(*elab, opts);
    EXPECT_EQ(flow.deadBlocks, 0);
    EXPECT_EQ(flow.deadNets, 0);
}

TEST(DataflowLiveness, ExtraSinkResurrectsTheCone)
{
    DeadLogicTop top;
    auto elab = top.elaborate();
    DataflowOptions opts;
    opts.extra_sinks.push_back(top.child.w2.netId());
    DataflowResult flow = dataflowAnalyze(*elab, opts);
    // Observing w2 pulls the whole chain back into the live cone.
    EXPECT_EQ(flow.deadBlocks, 0);
    EXPECT_TRUE(flow.liveNet[top.child.w1.netId()]);
}

TEST(DataflowLiveness, ConnectedConeStaysLive)
{
    struct LiveTop : Model
    {
        InPort in_;
        OutPort out;
        DeadLogicChild child;
        LiveTop()
            : Model(nullptr, "top"), in_(this, "in_", 8),
              out(this, "out", 8), child(this, "child")
        {
            connect(in_, child.in_);
            auto &b = combinational("c");
            b.assign(out, rd(child.w2));
        }
    } top;
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);
    EXPECT_EQ(flow.deadBlocks, 0);
    EXPECT_EQ(flow.deadNets, 0);
}

// ----------------------------------------------- dead-elim simulator

TEST(DeadElim, SkipsDeadBlocksAndPreservesLiveValues)
{
    DeadLogicTop a, b;
    auto ea = a.elaborate();
    auto eb = b.elaborate();

    SimConfig off;
    off.exec = ExecMode::OptInterp;
    SimConfig on = off;
    on.dead_elim = true;

    SimulationTool sim_off(ea, off);
    SimulationTool sim_on(eb, on);
    EXPECT_EQ(sim_off.specStats().deadBlocksElided, 0);
    EXPECT_EQ(sim_on.specStats().deadBlocksElided, 2);
    EXPECT_EQ(sim_on.specStats().deadNetsElided, 1);

    sim_off.reset();
    sim_on.reset();
    sim_off.cycle(4);
    sim_on.cycle(4);

    // Live values agree; the dead chain never ran under elimination,
    // so its nets hold their initial value.
    EXPECT_EQ(sim_off.readNet(a.out.netId()),
              sim_on.readNet(b.out.netId()));
    EXPECT_TRUE(sim_off.readNet(a.child.w1.netId()).any());
    EXPECT_FALSE(sim_on.readNet(b.child.w1.netId()).any());
}

// ----------------------------------------------------- X-propagation

/** Classic unreset enable-flop: q is X until the first en=1 cycle.
 *  The comb stage reading q makes the X observable. */
struct EnableFlop : Model
{
    InPort en, in_;
    Wire q;
    OutPort obs;

    EnableFlop()
        : Model(nullptr, "top"), en(this, "en", 1), in_(this, "in_", 8),
          q(this, "q", 8), obs(this, "obs", 8)
    {
        auto &b = tickRtl("seq");
        b.if_(rd(en), [&] { b.assign(q, rd(in_)); });
        auto &c = combinational("comb");
        c.assign(obs, rd(q));
    }
};

TEST(DataflowXProp, UnresetEnableFlopIsMaybeUninitialized)
{
    EnableFlop top;
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);

    int q = top.q.netId();
    EXPECT_FALSE(flow.definedNet[q]);
    EXPECT_EQ(flow.xKind[q], XCauseKind::NoReset);
    std::string witness = dataflowWitness(*elab, flow, q);
    EXPECT_NE(witness.find("top.q"), std::string::npos) << witness;

    auto issues = dataflowLint(*elab, flow);
    EXPECT_EQ(countCheck(issues, "maybe-uninitialized"), 1);
}

TEST(DataflowXProp, ResetPathMakesFlopDefined)
{
    testmodels::Counter top(nullptr, "top", 8);
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);
    EXPECT_TRUE(flow.definedNet[top.count.netId()]);
    EXPECT_FALSE(
        hasCheck(dataflowLint(*elab, flow), "maybe-uninitialized"));
}

TEST(DataflowXProp, UnconditionalFlopAssignIsDefined)
{
    testmodels::Register top(nullptr, "top", 8);
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);
    EXPECT_TRUE(flow.definedNet[top.out.netId()]);
}

TEST(DataflowXProp, WitnessChainsToRootAndTaintIsNotReReported)
{
    /** Comb logic downstream of the unreset flop is tainted, but only
     *  the root cause is a finding — the cone stays queryable. */
    struct Tainted : Model
    {
        InPort en, in_;
        Wire q;
        OutPort out;
        Tainted()
            : Model(nullptr, "top"), en(this, "en", 1),
              in_(this, "in_", 8), q(this, "q", 8), out(this, "out", 8)
        {
            auto &s = tickRtl("seq");
            s.if_(rd(en), [&] { s.assign(q, rd(in_)); });
            auto &c = combinational("comb");
            c.assign(out, rd(q) + 1);
        }
    } top;
    auto elab = top.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);

    int out = top.out.netId();
    int q = top.q.netId();
    EXPECT_FALSE(flow.definedNet[out]);
    EXPECT_EQ(flow.xKind[out], XCauseKind::Upstream);
    EXPECT_EQ(flow.xCause[out], q);
    std::string witness = dataflowWitness(*elab, flow, out);
    EXPECT_NE(witness.find("top.out"), std::string::npos) << witness;
    EXPECT_NE(witness.find("top.q"), std::string::npos) << witness;

    // One finding: the root (the flop), not the downstream taint.
    auto issues = dataflowLint(*elab, flow);
    EXPECT_EQ(countCheck(issues, "maybe-uninitialized"), 1);
    for (const auto &issue : issues)
        if (issue.check == "maybe-uninitialized")
            EXPECT_EQ(issue.path, "top.q");
}

// ------------------------------------------------------- mesh corpus

TEST(DataflowCorpus, MeshIsFullyLive)
{
    // Every router feeds the lambda-owning traffic models, so nothing
    // is eliminable — the equivalence tests below must hold exactly.
    net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
    auto elab = mesh.elaborate();
    DataflowResult flow = dataflowAnalyze(*elab);
    EXPECT_EQ(flow.deadBlocks, 0);
    EXPECT_EQ(flow.deadNets, 0);
}

// --------------------------------------- dead-elim mesh equivalence

SimConfig
meshCfg(SpecMode spec, int threads, bool dead_elim)
{
    SimConfig cfg;
    cfg.exec = ExecMode::OptInterp;
    cfg.spec = spec;
    cfg.threads = threads;
    cfg.dead_elim = dead_elim;
    return cfg;
}

void
runDeadElimEquiv(SpecMode spec, int threads, int nrouters, int cycles)
{
    auto ta = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                               nrouters, 4, 0.25, 7);
    auto tb = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                               nrouters, 4, 0.25, 7);
    auto ea = ta->elaborate();
    auto eb = tb->elaborate();
    auto off = makeSimulator(ea, meshCfg(spec, threads, false));
    auto on = makeSimulator(eb, meshCfg(spec, threads, true));

    off->reset();
    on->reset();
    for (int c = 0; c < cycles; ++c) {
        off->cycle();
        on->cycle();
    }
    for (const Net &net : ea->nets) {
        ASSERT_EQ(off->readNet(net.id), on->readNet(net.id))
            << "net " << net.name << " diverged (spec="
            << static_cast<int>(spec) << " threads=" << threads << ")";
    }
    EXPECT_EQ(stateDigest(*off), stateDigest(*on));
    EXPECT_GT(ta->stats().received, 0u) << "degenerate scenario";
    EXPECT_EQ(ta->stats().received, tb->stats().received);
}

class DeadElimMesh
    : public ::testing::TestWithParam<std::tuple<int, SpecMode>>
{};

TEST_P(DeadElimMesh, IdenticalDigestsOn8x8)
{
    auto [threads, spec] = GetParam();
    runDeadElimEquiv(spec, threads, 64, 48);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSpec, DeadElimMesh,
    ::testing::Combine(::testing::Values(1, 4),
                       ::testing::Values(SpecMode::None,
                                         SpecMode::Bytecode)));

TEST(DeadElimMesh, IdenticalDigestsWithCppSpec)
{
    if (!CppJit::compilerAvailable())
        GTEST_SKIP() << "no host compiler";
    runDeadElimEquiv(SpecMode::Cpp, 2, 16, 48);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(DeadElimMesh, ByteIdenticalWaveforms)
{
    const std::string off_path =
        ::testing::TempDir() + "dead_elim_off.vcd";
    const std::string on_path = ::testing::TempDir() + "dead_elim_on.vcd";
    for (int threads : {1, 4}) {
        auto ta = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                   16, 4, 0.3, 11);
        auto tb = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                   16, 4, 0.3, 11);
        {
            auto sim = makeSimulator(ta->elaborate(),
                                     meshCfg(SpecMode::None, threads,
                                             false));
            VcdWriter vcd(*sim, off_path);
            sim->reset();
            sim->cycle(60);
            vcd.close();
        }
        {
            auto sim = makeSimulator(tb->elaborate(),
                                     meshCfg(SpecMode::None, threads,
                                             true));
            VcdWriter vcd(*sim, on_path);
            sim->reset();
            sim->cycle(60);
            vcd.close();
        }
        std::string a = slurp(off_path);
        std::string b = slurp(on_path);
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "VCD streams differ at threads=" << threads;
    }
    std::remove(off_path.c_str());
    std::remove(on_path.c_str());
}

} // namespace
} // namespace cmtl
