/**
 * SimSnap: checkpoint/restore, record-replay and divergence bisection.
 *
 * The contract under test: a snapshot taken under one backend restores
 * into a fresh elaboration under *every* backend and thread count with
 * bit-identical state and a byte-identical VCD continuation; the
 * encoded image is versioned, checksummed and little-endian stable
 * (golden file in tests/data/); every malformed input fails with a
 * SnapError diagnostic, never a crash or garbage state; the
 * CheckpointManager rotates atomically; a StimTape replays recorded
 * stimulus deterministically; and the DivergenceBisector pinpoints the
 * exact first divergent cycle and the signal paths that differ there.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/psim.h"
#include "core/sim.h"
#include "core/snap.h"
#include "core/vcd.h"
#include "net/traffic.h"
#include "test_models.h"

#ifndef CMTL_TEST_DATA_DIR
#define CMTL_TEST_DATA_DIR "tests/data"
#endif

namespace cmtl {
namespace {

using net::MeshTrafficTop;
using net::NetLevel;

bool
needsCompiler(const std::string &backend)
{
    return backend.find("cpp") != std::string::npos;
}

std::vector<std::string>
allBackends()
{
    return {"interp",     "optinterp",       "bytecode",
            "cpp-block",  "cpp-design",      "interp+bytecode",
            "interp+cpp-block"};
}

SimConfig
backendCfg(const std::string &backend, int threads)
{
    SimConfig cfg = SimConfig::fromString(backend);
    cfg.threads = threads;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Everything after the first "#t" line with t > @p after_time. */
std::string
vcdTail(const std::string &vcd, uint64_t after_time)
{
    std::istringstream in(vcd);
    std::string line, out;
    bool tail = false;
    while (std::getline(in, line)) {
        if (!tail && line.size() > 1 && line[0] == '#') {
            char *end = nullptr;
            uint64_t t = std::strtoull(line.c_str() + 1, &end, 10);
            if (end && *end == '\0' && t > after_time)
                tail = true;
        }
        if (tail)
            out += line + "\n";
    }
    return out;
}

void
expectSameState(Simulator &a, Simulator &b, const std::string &ctx)
{
    for (const Net &net : a.elaboration().nets) {
        ASSERT_EQ(a.readNet(net.id), b.readNet(net.id))
            << ctx << ": net " << net.name << " diverged at cycle "
            << a.numCycles();
    }
}

// ------------------------------------------------- writer/reader/crc

TEST(SnapIo, WriterReaderRoundTrip)
{
    SnapWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.str("hierarchical.name");
    w.bits(Bits::fromWords(96, {0x1111222233334444ull, 0xffffffffull}));
    std::string buf = w.take();

    SnapReader r(buf);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.str(), "hierarchical.name");
    Bits b = r.bits();
    EXPECT_EQ(b.nbits(), 96);
    EXPECT_EQ(b.word(0), 0x1111222233334444ull);
    EXPECT_EQ(b.word(1), 0xffffffffull);
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapIo, LittleEndianOnTheWire)
{
    SnapWriter w;
    w.u32(0x04030201u);
    w.u64(0x0807060504030201ull);
    const std::string &buf = w.buffer();
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(static_cast<uint8_t>(buf[i]), i + 1) << i;
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(static_cast<uint8_t>(buf[4 + i]), i + 1) << i;
}

TEST(SnapIo, TruncatedReadThrows)
{
    SnapWriter w;
    w.u32(7);
    SnapReader r(w.buffer());
    EXPECT_THROW(r.u64(), SnapError);
}

TEST(SnapIo, Crc32MatchesKnownVector)
{
    // CRC-32 of "123456789" is the classic check value.
    EXPECT_EQ(snapCrc32("123456789", 9), 0xcbf43926u);
}

// ------------------------------------- cross-backend restore matrix

class SnapBackendMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    void
    SetUp() override
    {
        auto [backend, threads] = GetParam();
        if (needsCompiler(backend) && !CppJit::compilerAvailable())
            GTEST_SKIP() << "no host compiler";
        if (threads > 1 &&
            backendCfg(backend, threads).exec == ExecMode::Interp)
            GTEST_SKIP() << "boxed backends are sequential-only";
    }
};

/**
 * The headline acceptance test: snapshot an RTL mesh mid-run under the
 * boxed reference interpreter, restore under the parameterized backend
 * and thread count, and demand bit-identical state and a byte-identical
 * VCD continuation at the end of the run.
 */
TEST_P(SnapBackendMatrix, InterpSnapshotResumesBitIdentical)
{
    auto [backend, threads] = GetParam();
    const int nrouters = 16;
    const uint64_t snap_cycle = 60, end_cycle = 140;
    auto makeTop = [&] {
        return std::make_unique<MeshTrafficTop>("top", NetLevel::RTL,
                                                nrouters, 4, 0.3, 11);
    };
    const std::string tag =
        backend + "_t" + std::to_string(threads) + "_" +
        std::to_string(::getpid());
    const std::string full_path =
        ::testing::TempDir() + "snap_full_" + tag + ".vcd";
    const std::string tail_path =
        ::testing::TempDir() + "snap_tail_" + tag + ".vcd";

    // Uninterrupted reference run with a full waveform.
    auto gt = makeTop();
    auto golden = makeSimulator(gt->elaborate(), backendCfg("interp", 1));
    SimSnapshot snap;
    {
        VcdWriter vcd(*golden, full_path);
        golden->reset();
        while (golden->numCycles() < snap_cycle)
            golden->cycle();
        snap = snapSave(*golden);
        golden->cycle(end_cycle - snap_cycle);
        vcd.close();
    }
    EXPECT_EQ(snap.cycle, snap_cycle);

    // Encode/decode round-trip before restoring: the file image, not
    // the in-memory struct, is what a resumed process would see.
    SimSnapshot decoded = SimSnapshot::decode(snap.encode());
    EXPECT_EQ(decoded.digest(), snap.digest());

    auto tt = makeTop();
    auto sim = makeSimulator(tt->elaborate(),
                             backendCfg(backend, threads));
    snapRestore(*sim, decoded);
    EXPECT_EQ(sim->numCycles(), snap_cycle);
    // Restore is idempotent state: re-capturing immediately must give
    // the same digest the snapshot carries.
    EXPECT_EQ(stateDigest(*sim), snap.digest());
    {
        VcdWriter vcd(*sim, tail_path);
        sim->cycle(end_cycle - snap_cycle);
        vcd.close();
    }

    std::string ctx = backend + " threads=" + std::to_string(threads);
    EXPECT_EQ(sim->numCycles(), golden->numCycles());
    expectSameState(*golden, *sim, ctx);
    EXPECT_EQ(stateDigest(*sim), stateDigest(*golden)) << ctx;

    std::string full_tail =
        vcdTail(slurp(full_path), snap_cycle * 10);
    std::string resumed_tail =
        vcdTail(slurp(tail_path), snap_cycle * 10);
    ASSERT_FALSE(full_tail.empty());
    EXPECT_EQ(full_tail, resumed_tail)
        << "VCD continuation differs: " << ctx;
    std::remove(full_path.c_str());
    std::remove(tail_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SnapBackendMatrix,
    ::testing::Combine(::testing::ValuesIn(allBackends()),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &i) {
        std::string name = std::get<0>(i.param) + "_t" +
                           std::to_string(std::get<1>(i.param));
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

// ------------------------------------------- storage layout fixture

/**
 * Deterministic layout fixture covering every storage class the format
 * serializes: a narrow register, a 96-bit (multi-word) register and a
 * MemArray, all host-driven so runs are reproducible bit for bit.
 */
class SnapFixture : public Model
{
  public:
    InPort en;
    OutPort count;
    InPort wide_in;
    OutPort wide_out;
    InPort waddr, wdata, wen;
    MemArray mem;

    SnapFixture()
        : Model(nullptr, "fix"), en(this, "en", 1),
          count(this, "count", 16), wide_in(this, "wide_in", 96),
          wide_out(this, "wide_out", 96), waddr(this, "waddr", 3),
          wdata(this, "wdata", 48), wen(this, "wen", 1),
          mem(this, "mem", 48, 8)
    {
        auto &c = tickRtl("count_up");
        c.if_(rd(reset), [&] { c.assign(count, 0); },
              [&] {
                  c.if_(rd(en),
                        [&] { c.assign(count, rd(count) + 1); });
              });
        auto &w = tickRtl("wide_reg");
        w.assign(wide_out, rd(wide_in));
        auto &m = tickRtl("write_port");
        m.if_(rd(wen),
              [&] { m.writeArray(mem, rd(waddr), rd(wdata)); });
    }
};

/** Drive the fixture through a fixed deterministic stimulus. */
void
driveFixture(SnapFixture &fix, Simulator &sim, int cycles)
{
    fix.en.setValue(uint64_t(1));
    fix.wen.setValue(uint64_t(1));
    for (int i = 0; i < cycles; ++i) {
        fix.wide_in.setValue(Bits::fromWords(
            96, {0x1111111111111111ull * (i + 1), uint64_t(i) << 8}));
        fix.waddr.setValue(uint64_t(i) & 7);
        fix.wdata.setValue(uint64_t(0xbeef0000) + i);
        sim.cycle();
    }
}

TEST(SnapLayout, WideNetsAndArraysRoundTrip)
{
    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("optinterp", 1));
    sim.reset();
    driveFixture(fix, sim, 10);

    SimSnapshot snap = snapSave(sim);
    // Every MemArray element occupies bitsToWords(nbits) arena words.
    ASSERT_EQ(snap.arrays.size(), 1u);
    EXPECT_EQ(snap.array_elem_words[0],
              static_cast<uint32_t>(bitsToWords(48)));
    EXPECT_EQ(snap.arrays[0].size(), 8u * bitsToWords(48));

    SimSnapshot decoded = SimSnapshot::decode(snap.encode());
    EXPECT_EQ(decoded.digest(), snap.digest());

    SnapFixture fix2;
    auto elab2 = fix2.elaborate();
    SimulationTool sim2(elab2, backendCfg("interp", 1));
    snapRestore(sim2, decoded);

    EXPECT_EQ(sim2.numCycles(), sim.numCycles());
    expectSameState(sim, sim2, "layout round-trip");
    // The 96-bit register must survive with both words intact.
    Bits wide = fix2.wide_out.value();
    EXPECT_EQ(wide.word(0), 0x1111111111111111ull * 10);
    EXPECT_EQ(wide.word(1), uint64_t(9) << 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(sim2.readArray(fix2.mem, i).toUint64(),
                  sim.readArray(fix.mem, i).toUint64())
            << "element " << i;
    }

    // The restored simulator keeps simulating correctly.
    driveFixture(fix, sim, 5);
    driveFixture(fix2, sim2, 5);
    expectSameState(sim, sim2, "post-restore continuation");
}

// ----------------------------------------------- golden byte layout

/**
 * Byte-for-byte golden image: the encoded snapshot of a fixed fixture
 * run must never change within a format version. If this fails after
 * an intentional layout change, bump kSnapFormatVersion in
 * src/core/snap.h and regenerate with CMTL_REGEN_GOLDEN=1.
 */
TEST(SnapGolden, EncodedImageMatchesCheckedInBytes)
{
    const std::string golden_path =
        std::string(CMTL_TEST_DATA_DIR) + "/golden_snap_v" +
        std::to_string(kSnapFormatVersion) + ".bin";

    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("interp", 1));
    sim.reset();
    driveFixture(fix, sim, 7);
    std::string image = snapSave(sim).encode();

    if (std::getenv("CMTL_REGEN_GOLDEN")) {
        std::ofstream out(golden_path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
        out.write(image.data(),
                  static_cast<std::streamsize>(image.size()));
        out.close();
        GTEST_SKIP() << "regenerated " << golden_path;
    }

    std::string golden = slurp(golden_path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path
        << "; generate it with CMTL_REGEN_GOLDEN=1";
    EXPECT_EQ(image.size(), golden.size())
        << "snapshot byte layout changed: bump kSnapFormatVersion in "
           "src/core/snap.h and regenerate with CMTL_REGEN_GOLDEN=1";
    EXPECT_TRUE(image == golden)
        << "snapshot byte layout changed: bump kSnapFormatVersion in "
           "src/core/snap.h and regenerate with CMTL_REGEN_GOLDEN=1";
}

/**
 * Backward compatibility: a version-1 image (written before the
 * layout-aware format bump added the optional LAYT section) must
 * still decode and restore. The v1 golden was produced by the same
 * fixture run as the current golden, so the restored state must match
 * a fresh drive exactly.
 */
TEST(SnapGolden, Version1ImageStillDecodesAndRestores)
{
    const std::string v1_path =
        std::string(CMTL_TEST_DATA_DIR) + "/golden_snap_v1.bin";
    std::string image = slurp(v1_path);
    ASSERT_FALSE(image.empty()) << "missing golden file " << v1_path;

    SimSnapshot snap = SimSnapshot::decode(image);
    EXPECT_TRUE(snap.layout_policy.empty())
        << "a v1 image cannot carry a LAYT section";

    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("interp", 1));
    snapRestore(sim, snap);

    SnapFixture fix2;
    auto elab2 = fix2.elaborate();
    SimulationTool ref(elab2, backendCfg("interp", 1));
    ref.reset();
    driveFixture(fix2, ref, 7);

    EXPECT_EQ(sim.numCycles(), ref.numCycles());
    expectSameState(ref, sim, "v1 golden restore");
    EXPECT_EQ(snap.digest(), snapSave(ref).digest());
}

// ------------------------------------------------- failure handling

class SnapFailures : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fix_ = std::make_unique<SnapFixture>();
        elab_ = fix_->elaborate();
        sim_ = std::make_unique<SimulationTool>(elab_,
                                                backendCfg("interp", 1));
        sim_->reset();
        driveFixture(*fix_, *sim_, 4);
        image_ = snapSave(*sim_).encode();
    }

    std::string
    errorOf(const std::string &bytes)
    {
        try {
            SimSnapshot::decode(bytes);
        } catch (const SnapError &e) {
            return e.what();
        }
        return "";
    }

    std::unique_ptr<SnapFixture> fix_;
    std::shared_ptr<Elaboration> elab_;
    std::unique_ptr<SimulationTool> sim_;
    std::string image_;
};

TEST_F(SnapFailures, BadMagicIsDiagnosed)
{
    std::string bad = image_;
    bad[0] = 'X';
    EXPECT_NE(errorOf(bad).find("bad magic"), std::string::npos);
    EXPECT_NE(errorOf("short"), "");
}

TEST_F(SnapFailures, UnsupportedVersionIsDiagnosed)
{
    std::string bad = image_;
    bad[8] = 99; // version field, little-endian low byte
    std::string err = errorOf(bad);
    EXPECT_NE(err.find("version 99 unsupported"), std::string::npos)
        << err;
    EXPECT_NE(err.find("versions 1..2"), std::string::npos) << err;
}

TEST_F(SnapFailures, CorruptedPayloadFailsTheChecksum)
{
    for (size_t offset : {image_.size() / 2, image_.size() - 5}) {
        std::string bad = image_;
        bad[offset] = static_cast<char>(bad[offset] ^ 0x40);
        std::string err = errorOf(bad);
        EXPECT_NE(err.find("checksum mismatch"), std::string::npos)
            << "offset " << offset << ": " << err;
    }
}

TEST_F(SnapFailures, TruncationIsDiagnosedAtEveryLength)
{
    // No prefix of a valid image may decode (or crash): the trailing
    // file CRC covers every byte.
    for (size_t len = 0; len < image_.size(); len += 257)
        EXPECT_THROW(SimSnapshot::decode(image_.substr(0, len)),
                     SnapError)
            << "prefix of " << len << " bytes decoded";
}

TEST_F(SnapFailures, RestoringIntoADifferentDesignIsRefused)
{
    testmodels::Counter other(nullptr, "other", 16);
    auto elab = other.elaborate();
    SimulationTool sim(elab, backendCfg("interp", 1));
    try {
        snapRestore(sim, SimSnapshot::decode(image_));
        FAIL() << "restore into a different design succeeded";
    } catch (const SnapError &e) {
        EXPECT_NE(std::string(e.what()).find("different design"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(SnapFailures, MissingFileIsDiagnosed)
{
    EXPECT_THROW(snapLoadFile("/nonexistent/dir/x.snap"), SnapError);
}

// ---------------------------------------------- checkpoint manager

TEST(Checkpointing, PeriodicSaveRotationAndResume)
{
    const std::string path = ::testing::TempDir() + "ckpt_" +
                             std::to_string(::getpid()) + ".snap";

    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("optinterp", 1));
    CheckpointManager ckpt(path, /*every=*/10, /*keep_last=*/2);
    ckpt.attach(sim);
    sim.reset();
    driveFixture(fix, sim, 44); // cycles 1..45 (reset runs one)

    EXPECT_EQ(ckpt.lastSavedCycle(), 40u);
    EXPECT_GT(ckpt.lastSaveMs(), 0.0);
    // keep_last=2: cycles 30 and 40 remain, 10 and 20 were rotated out.
    ASSERT_EQ(ckpt.rotated().size(), 2u);
    EXPECT_EQ(ckpt.rotated()[0], path + ".30");
    EXPECT_EQ(ckpt.rotated()[1], path + ".40");
    EXPECT_TRUE(slurp(path + ".10").empty());
    EXPECT_FALSE(slurp(path + ".30").empty());
    // The stable latest and the newest stamped copy are one image.
    EXPECT_EQ(slurp(path), slurp(path + ".40"));

    // No partially written file may exist after a save completed.
    EXPECT_TRUE(slurp(path + ".tmp").empty());

    // Crash-resume: a fresh simulator restored from the stable latest
    // and re-driven agrees with the uninterrupted run.
    SimSnapshot snap = snapLoadFile(path);
    EXPECT_EQ(snap.cycle, 40u);
    SnapFixture fix2;
    auto elab2 = fix2.elaborate();
    SimulationTool sim2(elab2, backendCfg("optinterp", 1));
    snapRestore(sim2, snap);
    // Re-drive cycles 41..45 (driveFixture indexes from 0 per call, so
    // replay the original stimulus tail explicitly).
    fix2.en.setValue(uint64_t(1));
    fix2.wen.setValue(uint64_t(1));
    for (int i = 39; i < 44; ++i) {
        fix2.wide_in.setValue(Bits::fromWords(
            96, {0x1111111111111111ull * (i + 1), uint64_t(i) << 8}));
        fix2.waddr.setValue(uint64_t(i) & 7);
        fix2.wdata.setValue(uint64_t(0xbeef0000) + i);
        sim2.cycle();
    }
    EXPECT_EQ(sim2.numCycles(), sim.numCycles());
    expectSameState(sim, sim2, "checkpoint resume");

    std::remove(path.c_str());
    std::remove((path + ".30").c_str());
    std::remove((path + ".40").c_str());
}

// Job-scoped tags: two managers sharing one base path write disjoint
// "base.tag" / "base.tag.<cycle>" families and never the untagged
// base — concurrent server jobs can all point at one checkpoint path.
TEST(Checkpointing, TagScopesConcurrentManagers)
{
    const std::string base = ::testing::TempDir() + "ckpt_tag_" +
                             std::to_string(::getpid()) + ".snap";
    std::remove(base.c_str());

    SnapFixture fix_a, fix_b;
    auto elab_a = fix_a.elaborate();
    auto elab_b = fix_b.elaborate();
    SimulationTool sim_a(elab_a, backendCfg("optinterp", 1));
    SimulationTool sim_b(elab_b, backendCfg("optinterp", 1));
    CheckpointManager ckpt_a(base, /*every=*/10, /*keep_last=*/2,
                             "job1");
    CheckpointManager ckpt_b(base, /*every=*/10, /*keep_last=*/2,
                             "job2");
    EXPECT_EQ(ckpt_a.tag(), "job1");
    EXPECT_EQ(ckpt_a.path(), base + ".job1");
    ckpt_a.attach(sim_a);
    ckpt_b.attach(sim_b);
    sim_a.reset();
    sim_b.reset();
    driveFixture(fix_a, sim_a, 24); // saves at 10, 20
    driveFixture(fix_b, sim_b, 14); // saves at 10

    EXPECT_FALSE(slurp(base + ".job1").empty());
    EXPECT_FALSE(slurp(base + ".job2").empty());
    EXPECT_TRUE(slurp(base).empty())
        << "untagged checkpoint written despite tags";
    EXPECT_EQ(snapLoadFile(base + ".job1").cycle, 20u);
    EXPECT_EQ(snapLoadFile(base + ".job2").cycle, 10u);
    // Stamped rotation copies are tag-scoped too.
    EXPECT_EQ(slurp(base + ".job1"), slurp(base + ".job1.20"));

    // An untagged manager is byte-compatible with the old layout.
    CheckpointManager plain(base, 10);
    EXPECT_EQ(plain.tag(), "");
    EXPECT_EQ(plain.path(), base);

    for (const char *suffix :
         {".job1", ".job1.10", ".job1.20", ".job2", ".job2.10"})
        std::remove((base + suffix).c_str());
}

// ------------------------------------------------- stimulus replay

TEST(StimReplay, RecordedTapeReplaysDeterministically)
{
    const std::string path = ::testing::TempDir() + "tape_" +
                             std::to_string(::getpid()) + ".stim";
    const int cycles = 25;

    // Record: a host driver feeds the fixture pseudo-random stimulus.
    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("optinterp", 1));
    StimTape tape;
    tape.channel(fix.en);
    tape.channel(fix.wide_in);
    tape.channel(fix.waddr);
    tape.channel(fix.wdata);
    tape.channel(fix.wen);
    sim.reset();
    tape.attachRecorder(sim);
    uint64_t seed = 12345;
    for (int i = 0; i < cycles; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        fix.en.setValue(seed & 1);
        fix.wen.setValue((seed >> 1) & 1);
        fix.waddr.setValue((seed >> 2) & 7);
        fix.wdata.setValue((seed >> 5) & 0xffffffffull);
        fix.wide_in.setValue(
            Bits::fromWords(96, {seed, seed >> 32}));
        sim.cycle();
    }
    EXPECT_EQ(tape.numChannels(), 5u);
    EXPECT_EQ(tape.endCycle() - tape.startCycle(),
              static_cast<uint64_t>(cycles));
    tape.saveFile(path);

    // Replay from the file into a fresh run: no driver, same state.
    StimTape replay = StimTape::loadFile(path);
    EXPECT_EQ(replay.numChannels(), 5u);
    SnapFixture fix2;
    auto elab2 = fix2.elaborate();
    SimulationTool sim2(elab2, backendCfg("interp", 1));
    sim2.reset();
    while (replay.applyTo(sim2))
        sim2.cycle();
    EXPECT_EQ(sim2.numCycles(), sim.numCycles());
    expectSameState(sim, sim2, "stimulus replay");
    std::remove(path.c_str());
}

TEST(StimReplay, TapeRefusesAForeignDesign)
{
    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("optinterp", 1));
    StimTape tape;
    tape.channel(fix.en);
    sim.reset();
    tape.attachRecorder(sim);
    sim.cycle(3);

    // Serialized names bind lazily; a design without the channel's
    // hierarchical path must be rejected, not silently skipped.
    StimTape foreign = StimTape::decode(tape.encode());
    testmodels::Counter other(nullptr, "other", 8);
    auto elab2 = other.elaborate();
    SimulationTool sim2(elab2, backendCfg("optinterp", 1));
    EXPECT_THROW(foreign.applyTo(sim2), SnapError);
}

TEST(StimReplay, CorruptedTapeIsDiagnosed)
{
    SnapFixture fix;
    auto elab = fix.elaborate();
    SimulationTool sim(elab, backendCfg("optinterp", 1));
    StimTape tape;
    tape.channel(fix.wdata);
    sim.reset();
    tape.attachRecorder(sim);
    sim.cycle(2);
    std::string bytes = tape.encode();
    bytes[bytes.size() / 2] ^= 0x10;
    EXPECT_THROW(StimTape::decode(bytes), SnapError);
    EXPECT_THROW(StimTape::decode("CMTLTAPEgarbage"), SnapError);
}

// -------------------------------------------- divergence bisection

TEST(DivergenceBisection, AgreeingBackendsReportNoDivergence)
{
    std::vector<std::unique_ptr<MeshTrafficTop>> keep;
    auto factory = [&](const std::string &backend) {
        return [&keep, backend]() -> std::unique_ptr<Simulator> {
            keep.push_back(std::make_unique<MeshTrafficTop>(
                "top", NetLevel::RTL, 4, 4, 0.3, 9));
            return makeSimulator(keep.back()->elaborate(),
                                 backendCfg(backend, 1));
        };
    };

    auto setup = factory("interp")();
    setup->reset();
    setup->cycle(19);
    SimSnapshot start = snapSave(*setup);
    setup.reset();

    DivergenceBisector bisect(factory("interp"), factory("optinterp"));
    DivergenceReport rep = bisect.run(start, /*horizon=*/60);
    EXPECT_FALSE(rep.diverged) << rep.summary();
    EXPECT_EQ(rep.summary(), "no divergence");
}

TEST(DivergenceBisection, PinpointsTheFirstDivergentCycleAndSignal)
{
    const uint64_t bug_cycle = 37;
    std::vector<std::unique_ptr<MeshTrafficTop>> keep;

    auto makeGood = [&]() -> std::unique_ptr<Simulator> {
        keep.push_back(std::make_unique<MeshTrafficTop>(
            "top", NetLevel::RTL, 4, 4, 0.3, 9));
        return makeSimulator(keep.back()->elaborate(),
                             backendCfg("interp", 1));
    };

    // Pick a statically flopped net to corrupt: register state
    // persists across the settle, so the perturbation is a genuine
    // state divergence rather than a transient.
    std::string bug_net_name;
    int bug_net = -1;
    {
        auto probe = makeGood();
        for (const Net &net : probe->elaboration().nets) {
            if (net.floppedStatic) {
                bug_net = net.id;
                bug_net_name = net.name;
                break;
            }
        }
    }
    ASSERT_GE(bug_net, 0) << "no flopped net in the fixture";

    // The intentionally broken variant: from bug_cycle on, an
    // onCycleEnd hook flips the low bit of that register — the kind of
    // wrong-at-one-cycle bug a broken backend would introduce.
    auto makeBroken = [&]() -> std::unique_ptr<Simulator> {
        auto sim = makeGood();
        Simulator *raw = sim.get();
        int net = bug_net;
        raw->onCycleEnd([raw, net, bug_cycle](uint64_t c) {
            if (c < bug_cycle)
                return;
            Bits v = raw->readNet(net);
            std::vector<uint64_t> words(v.nwords());
            for (int w = 0; w < v.nwords(); ++w)
                words[w] = v.word(w);
            words[0] ^= 1;
            raw->pokeNet(net, Bits::fromWords(v.nbits(), words));
        });
        return sim;
    };

    auto setup = makeGood();
    setup->reset();
    setup->cycle(19);
    SimSnapshot start = snapSave(*setup);
    setup.reset();

    DivergenceBisector bisect(makeGood, makeBroken);
    DivergenceReport rep = bisect.run(start, /*horizon=*/100);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.first_divergent_cycle, bug_cycle);
    bool named = false;
    for (const std::string &net : rep.divergent_nets)
        named |= net == bug_net_name;
    EXPECT_TRUE(named) << "bisector did not name " << bug_net_name
                       << ": " << rep.summary();
    EXPECT_NE(rep.summary().find("cycle 37"), std::string::npos);
    EXPECT_GT(rep.cycles_executed, 0u);
}

// ------------------------------------------------- misc diagnostics

TEST(SnapMisc, OpaqueStateModelsAreListedConservatively)
{
    // A lambda-block model without snapSave support is a candidate for
    // silent state loss; the RTL fixture (pure IR) is not.
    class OpaqueFl : public Model
    {
      public:
        uint64_t state = 0;
        OpaqueFl() : Model(nullptr, "opq")
        {
            tickFl("step", [this] { ++state; });
        }
    };
    OpaqueFl opq;
    auto elab = opq.elaborate();
    auto listed = opaqueStateModels(*elab);
    ASSERT_EQ(listed.size(), 1u);
    EXPECT_EQ(listed[0], opq.fullName());

    SnapFixture fix;
    auto elab2 = fix.elaborate();
    EXPECT_TRUE(opaqueStateModels(*elab2).empty());

    // The traffic models serialize their host state, so a full RTL
    // mesh top reports no opaque models either.
    MeshTrafficTop top("top", NetLevel::RTL, 4, 4, 0.2, 3);
    auto elab3 = top.elaborate();
    EXPECT_TRUE(opaqueStateModels(*elab3).empty());
}

TEST(SnapMisc, DesignFingerprintSeparatesDesigns)
{
    SnapFixture a;
    auto ea = a.elaborate();
    uint64_t fa = designFingerprint(*ea);
    {
        SnapFixture b;
        auto eb = b.elaborate();
        EXPECT_EQ(designFingerprint(*eb), fa)
            << "same design must fingerprint identically";
    }
    testmodels::Counter c(nullptr, "c", 16);
    auto ec = c.elaborate();
    EXPECT_NE(designFingerprint(*ec), fa);
}

} // namespace
} // namespace cmtl
