/**
 * @file
 * Section III-D: cycle-level 8x8 mesh network characterization.
 *
 * Sweeps offered load on the 64-node CL mesh and reports average
 * latency and delivered throughput, deriving the zero-load latency
 * and the saturation injection rate.
 *
 * Paper reference: zero-load latency 13 cycles; saturation at ~32%
 * injection.
 */

#include "common.h"
#include "net/traffic.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::net;

struct Point
{
    double offered;
    double latency;
    double throughput;
};

Point
measurePoint(const SimConfig &cfg, double injection, uint64_t warmup,
             uint64_t window)
{
    auto top = std::make_unique<MeshTrafficTop>(
        "top", NetLevel::CLSpec, 64, 4, injection, 31);
    auto elab = top->elaborate();
    SimulationTool sim(elab, cfg);
    sim.cycle(warmup);
    top->resetStats();
    sim.cycle(window);
    return Point{injection, top->stats().avgLatency(),
                 top->stats().throughput(64)};
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;
    SimConfig cfg = simjitConfig(opts);
    uint64_t warmup = full ? 5000 : 1000;
    uint64_t window = full ? 50000 : 8000;

    std::printf("Section III-D: 8x8 cycle-level mesh characterization\n");
    std::printf("(uniform random traffic, 4-entry buffers, XY "
                "dimension-ordered routing)\n\n");
    std::printf("%9s %12s %12s\n", "injection", "avg latency",
                "throughput");
    rule(' ', 0);

    std::vector<Point> points;
    for (double inj : {0.005, 0.05, 0.10, 0.15, 0.20, 0.25, 0.28, 0.30,
                       0.32, 0.34, 0.36, 0.38, 0.40, 0.44}) {
        Point p = measurePoint(cfg, inj, warmup, window);
        points.push_back(p);
        std::printf("%8.1f%% %12.2f %11.1f%%\n", p.offered * 100,
                    p.latency, p.throughput * 100);
        std::fflush(stdout);
    }

    double zero_load = points.front().latency;
    double saturation = points.back().offered;
    for (const Point &p : points) {
        if (p.latency > 2.0 * zero_load) {
            saturation = p.offered;
            break;
        }
    }
    rule();
    std::printf("zero-load latency: %.1f cycles (paper: 13)\n",
                zero_load);
    std::printf("saturation (latency > 2x zero-load) near %.0f%% "
                "injection (paper: 32%%)\n",
                saturation * 100);
    return 0;
}
