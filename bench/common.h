/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmarks.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * Simulation rates are measured adaptively (warmup, then timed chunks
 * until a minimum wall-clock budget), and speedup-vs-simulated-cycles
 * curves are derived from measured steady-state rates plus measured
 * one-time overheads: time(N) = setup + N / rate. Our interpreters
 * have cycle-invariant cost (no warmup effects), so this is exact,
 * and it keeps the default bench runtime in minutes. Pass --full for
 * paper-scale parameters.
 */

#ifndef CMTL_BENCH_COMMON_H
#define CMTL_BENCH_COMMON_H

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scope.h"
#include "core/sim.h"
#include "core/snap.h"
#include "core/timing.h"
#include "stdlib/options.h"

namespace cmtl {
namespace bench {

using stdlib::SimOptions;

/** One execution configuration mapped to a paper configuration. */
struct ModeSpec
{
    std::string name; //!< the paper's name for this configuration
    SimConfig cfg;
};

/**
 * The four framework configurations of the paper's Figure 14, in
 * order. SimJIT rows use the compiled-C++ specializer when a host
 * compiler is available, else the bytecode engine (reported).
 */
inline std::vector<ModeSpec>
paperModes()
{
    SpecMode spec = CppJit::compilerAvailable() ? SpecMode::Cpp
                                                : SpecMode::Bytecode;
    std::vector<ModeSpec> modes;
    modes.push_back({"CPython", {ExecMode::Interp, SpecMode::None,
                                 SchedMode::Auto, "", true}});
    modes.push_back({"PyPy", {ExecMode::OptInterp, SpecMode::None,
                              SchedMode::Auto, "", true}});
    modes.push_back(
        {"SimJIT", {ExecMode::Interp, spec, SchedMode::Auto, "", true}});
    modes.push_back({"SimJIT+PyPy",
                     {ExecMode::OptInterp, spec, SchedMode::Auto, "",
                      true}});
    return modes;
}

/**
 * Restrict the paper configurations to the CPython baseline (the
 * speedup denominator) plus the backend named on the command line.
 * Without --backend this is exactly paperModes().
 */
inline std::vector<ModeSpec>
paperModes(const SimOptions &opts)
{
    if (!opts.backend_set)
        return paperModes();
    SimConfig chosen = opts.cfg;
    chosen.threads = 1;
    chosen.resolve();
    std::vector<ModeSpec> modes;
    modes.push_back(paperModes().front()); // CPython baseline
    if (chosen.toString() != "interp")
        modes.push_back({chosen.toString(), chosen});
    return modes;
}

/** True when --full / CMTL_BENCH_FULL=1 requests paper-scale runs. */
inline bool
fullScale(int argc, char **argv)
{
    return SimOptions::parse(argc, argv).full;
}

/**
 * The default single-thread SimJIT configuration (per-block compiled
 * C++ when a host compiler exists, bytecode otherwise), overridden by
 * --backend=<b> when given on the command line.
 */
inline SimConfig
simjitConfig(const SimOptions &opts)
{
    SimConfig cfg;
    if (opts.backend_set) {
        cfg = opts.cfg;
        cfg.threads = 1;
        cfg.resolve();
        return cfg;
    }
    cfg.exec = ExecMode::OptInterp;
    cfg.spec = CppJit::compilerAvailable() ? SpecMode::Cpp
                                           : SpecMode::Bytecode;
    cfg.resolve();
    return cfg;
}

/** Result of an adaptive rate measurement. */
struct RateResult
{
    double cycles_per_second = 0.0;
    double setup_seconds = 0.0; //!< simulator construction (this run)
    SpecStats spec;
    LayoutStats layout;
    uint64_t measured_cycles = 0;
};

/**
 * Measure the steady-state simulation rate of a simulator produced by
 * @p make_sim. The factory owns its model; the callback returns a
 * ready simulator (either kernel behind the Simulator interface).
 */
inline RateResult
measureRate(const std::function<std::unique_ptr<Simulator>()> &make,
            double budget_seconds = 2.0, uint64_t warmup_cycles = 64)
{
    RateResult out;
    Stopwatch setup;
    std::unique_ptr<Simulator> sim = make();
    out.setup_seconds = setup.elapsed();

    sim->cycle(warmup_cycles);
    // Tiered cpp-design: drain the bytecode warm-up tier so the timed
    // loop sees native steady state only. The drained cycles land in
    // setup_seconds-equivalent territory via spec.tierSwapCycle.
    while (sim->tierPending())
        sim->cycle(warmup_cycles);
    uint64_t chunk = std::max<uint64_t>(16, warmup_cycles / 4);
    Stopwatch timer;
    uint64_t cycles = 0;
    while (timer.elapsed() < budget_seconds) {
        sim->cycle(chunk);
        cycles += chunk;
        if (timer.elapsed() < budget_seconds / 8)
            chunk *= 2;
    }
    out.measured_cycles = cycles;
    out.cycles_per_second = static_cast<double>(cycles) / timer.elapsed();
    // Read spec stats after the run: a tiered backend fills in its
    // compile time and tier-swap cycle only once the swap happens
    // (and a PGO run reports the adopted heat-refined layout).
    out.spec = sim->specStats();
    out.layout = sim->layoutStats();
    return out;
}

/** Result of a checkpoint/warm-start measurement. */
struct WarmStartResult
{
    uint64_t snap_cycle = 0;      //!< cycle the snapshot was taken at
    uint64_t snapshot_bytes = 0;  //!< encoded image size
    double snapshot_ms = 0.0;     //!< capture + encode wall time
    double restore_ms = 0.0;      //!< decode + restore wall time
    /** Steady-state rate of the restored (warm-started) run. */
    double cycles_per_second = 0.0;
};

/**
 * Measure SimSnap checkpoint cost and the warm-start rate: run a
 * simulator to @p snap_cycle, snapshot it, then restore the image into
 * a *second* fresh simulator and time its steady-state rate from
 * there. The first simulator is destroyed before the second is made,
 * because bench factories replace a function-static top model.
 */
inline WarmStartResult
measureWarmStart(const std::function<std::unique_ptr<Simulator>()> &make,
                 uint64_t snap_cycle = 5000, double budget_seconds = 1.0)
{
    WarmStartResult out;
    out.snap_cycle = snap_cycle;

    std::unique_ptr<Simulator> sim = make();
    sim->cycle(snap_cycle);
    Stopwatch snap_sw;
    std::string image = snapSave(*sim).encode();
    out.snapshot_ms = snap_sw.elapsed() * 1e3;
    out.snapshot_bytes = image.size();
    sim.reset();

    std::unique_ptr<Simulator> resumed = make();
    Stopwatch restore_sw;
    snapRestore(*resumed, SimSnapshot::decode(image));
    out.restore_ms = restore_sw.elapsed() * 1e3;

    resumed->cycle(64);
    uint64_t chunk = 256, cycles = 0;
    Stopwatch timer;
    while (timer.elapsed() < budget_seconds) {
        resumed->cycle(chunk);
        cycles += chunk;
        if (timer.elapsed() < budget_seconds / 8)
            chunk *= 2;
    }
    out.cycles_per_second = static_cast<double>(cycles) / timer.elapsed();
    return out;
}

/**
 * Run a short profiled simulation and return the SimScope JSON
 * snapshot (phases, hot blocks, traced val/rdy channels, metrics) for
 * a BENCH_*.json "metrics" section.
 */
inline std::string
profileSnapshot(const std::function<std::unique_ptr<Simulator>()> &make,
                uint64_t cycles = 192)
{
    std::unique_ptr<Simulator> sim = make();
    SimScope scope(*sim);
    scope.traceAllValRdy();
    sim->cycle(cycles);
    std::string json = scope.jsonSnapshot();
    scope.detach();
    return json;
}

/** Derived total wall time for simulating @p n target cycles. */
inline double
projectedTime(const RateResult &r, uint64_t n, bool include_setup)
{
    double t = static_cast<double>(n) / r.cycles_per_second;
    return include_setup ? t + r.setup_seconds : t;
}

inline void
rule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/**
 * Minimal streaming JSON writer for machine-readable bench baselines
 * (BENCH_*.json). Handles nesting and comma placement; values are
 * written eagerly, so memory use is constant.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(const std::string &path)
        : out_(std::fopen(path.c_str(), "w"))
    {
        if (!out_)
            std::perror(("cannot write " + path).c_str());
    }

    ~JsonWriter()
    {
        if (out_) {
            std::fputc('\n', out_);
            std::fclose(out_);
        }
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &
    beginObject()
    {
        sep();
        raw("{");
        fresh_.push_back(true);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        fresh_.pop_back();
        raw("}");
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        sep();
        raw("[");
        fresh_.push_back(true);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        fresh_.pop_back();
        raw("]");
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        sep();
        writeString(k);
        raw(":");
        pending_value_ = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        sep();
        writeString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        sep();
        if (out_)
            std::fprintf(out_, "%.6g", v);
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        sep();
        if (out_)
            std::fprintf(out_, "%llu",
                         static_cast<unsigned long long>(v));
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        sep();
        if (out_)
            std::fprintf(out_, "%d", v);
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        sep();
        raw(v ? "true" : "false");
        return *this;
    }

    /** key + scalar value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** Embed pre-serialized JSON (e.g. a SimScope snapshot) verbatim. */
    JsonWriter &
    rawValue(const std::string &json)
    {
        sep();
        raw(json.c_str());
        return *this;
    }

  private:
    void
    sep()
    {
        if (pending_value_) {
            // The comma (if any) was written with the key.
            pending_value_ = false;
            return;
        }
        if (!fresh_.empty()) {
            if (!fresh_.back())
                raw(",");
            fresh_.back() = false;
        }
    }

    void
    raw(const char *s)
    {
        if (out_)
            std::fputs(s, out_);
    }

    void
    writeString(const std::string &s)
    {
        if (!out_)
            return;
        std::fputc('"', out_);
        for (char c : s) {
            if (c == '"' || c == '\\')
                std::fputc('\\', out_);
            std::fputc(c, out_);
        }
        std::fputc('"', out_);
    }

    std::FILE *out_;
    std::vector<bool> fresh_; //!< per nesting level: no entry yet
    bool pending_value_ = false;
};

} // namespace bench
} // namespace cmtl

#endif // CMTL_BENCH_COMMON_H
