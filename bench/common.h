/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmarks.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * Simulation rates are measured adaptively (warmup, then timed chunks
 * until a minimum wall-clock budget), and speedup-vs-simulated-cycles
 * curves are derived from measured steady-state rates plus measured
 * one-time overheads: time(N) = setup + N / rate. Our interpreters
 * have cycle-invariant cost (no warmup effects), so this is exact,
 * and it keeps the default bench runtime in minutes. Pass --full for
 * paper-scale parameters.
 */

#ifndef CMTL_BENCH_COMMON_H
#define CMTL_BENCH_COMMON_H

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sim.h"
#include "core/timing.h"

namespace cmtl {
namespace bench {

/** One execution configuration mapped to a paper configuration. */
struct ModeSpec
{
    std::string name; //!< the paper's name for this configuration
    SimConfig cfg;
};

/**
 * The four framework configurations of the paper's Figure 14, in
 * order. SimJIT rows use the compiled-C++ specializer when a host
 * compiler is available, else the bytecode engine (reported).
 */
inline std::vector<ModeSpec>
paperModes()
{
    SpecMode spec = CppJit::compilerAvailable() ? SpecMode::Cpp
                                                : SpecMode::Bytecode;
    std::vector<ModeSpec> modes;
    modes.push_back({"CPython", {ExecMode::Interp, SpecMode::None,
                                 SchedMode::Auto, "", true}});
    modes.push_back({"PyPy", {ExecMode::OptInterp, SpecMode::None,
                              SchedMode::Auto, "", true}});
    modes.push_back(
        {"SimJIT", {ExecMode::Interp, spec, SchedMode::Auto, "", true}});
    modes.push_back({"SimJIT+PyPy",
                     {ExecMode::OptInterp, spec, SchedMode::Auto, "",
                      true}});
    return modes;
}

/** True when --full / CMTL_BENCH_FULL=1 requests paper-scale runs. */
inline bool
fullScale(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            return true;
    }
    const char *env = std::getenv("CMTL_BENCH_FULL");
    return env && env[0] == '1';
}

/** Result of an adaptive rate measurement. */
struct RateResult
{
    double cycles_per_second = 0.0;
    double setup_seconds = 0.0; //!< simulator construction (this run)
    SpecStats spec;
    uint64_t measured_cycles = 0;
};

/**
 * Measure the steady-state simulation rate of a simulator produced by
 * @p make_sim. The factory owns its model; the callback returns a
 * ready simulator.
 */
inline RateResult
measureRate(const std::function<std::unique_ptr<SimulationTool>()> &make,
            double budget_seconds = 2.0, uint64_t warmup_cycles = 64)
{
    RateResult out;
    Stopwatch setup;
    std::unique_ptr<SimulationTool> sim = make();
    out.setup_seconds = setup.elapsed();
    out.spec = sim->specStats();

    sim->cycle(warmup_cycles);
    uint64_t chunk = std::max<uint64_t>(16, warmup_cycles / 4);
    Stopwatch timer;
    uint64_t cycles = 0;
    while (timer.elapsed() < budget_seconds) {
        sim->cycle(chunk);
        cycles += chunk;
        if (timer.elapsed() < budget_seconds / 8)
            chunk *= 2;
    }
    out.measured_cycles = cycles;
    out.cycles_per_second = static_cast<double>(cycles) / timer.elapsed();
    return out;
}

/** Derived total wall time for simulating @p n target cycles. */
inline double
projectedTime(const RateResult &r, uint64_t n, bool include_setup)
{
    double t = static_cast<double>(n) / r.cycles_per_second;
    return include_setup ? t + r.setup_seconds : t;
}

inline void
rule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace cmtl

#endif // CMTL_BENCH_COMMON_H
