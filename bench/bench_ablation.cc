/**
 * @file
 * Ablations of the framework's design choices (DESIGN.md Section 6).
 *
 *  1. Combinational scheduling: event-driven with sensitivity lists
 *     vs. statically levelized execution, on both storage backends.
 *  2. Signal storage: boxed dictionary (CPython analog) vs. dense
 *     slot arena (PyPy analog), at fixed scheduling policy.
 *  3. Specialization engine: tree-walk interpretation vs. bytecode
 *     vs. compiled C++, on the fully-specializable RTL mesh.
 */

#include "common.h"
#include "net/traffic.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::net;

double
rate(NetLevel level, const SimConfig &cfg, double injection = 0.3)
{
    return measureRate(
               [&] {
                   static std::unique_ptr<MeshTrafficTop> top;
                   top = std::make_unique<MeshTrafficTop>(
                       "top", level, 16, 4, injection, 1);
                   auto elab = top->elaborate();
                   return std::make_unique<SimulationTool>(elab, cfg);
               },
               1.0)
        .cycles_per_second;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)fullScale(argc, argv);
    std::printf("Design-choice ablations (16-node meshes, cycles/s)\n");

    rule('=');
    std::printf("1. scheduling policy (spec off)\n");
    rule('=');
    std::printf("%-8s %-8s %12s %12s %9s\n", "net", "storage", "event",
                "static", "ratio");
    for (NetLevel level : {NetLevel::CLSpec, NetLevel::RTL}) {
        for (ExecMode exec : {ExecMode::Interp, ExecMode::OptInterp}) {
            SimConfig ev{exec, SpecMode::None, SchedMode::Event, "",
                         true};
            SimConfig st{exec, SpecMode::None, SchedMode::Static, "",
                         true};
            double r_ev = rate(level, ev);
            double r_st = rate(level, st);
            std::printf("%-8s %-8s %12.0f %12.0f %8.2fx\n",
                        netLevelName(level),
                        exec == ExecMode::Interp ? "boxed" : "slot",
                        r_ev, r_st, r_st / r_ev);
        }
    }

    rule('=');
    std::printf("2. storage backend (auto scheduling)\n");
    rule('=');
    std::printf("%-8s %12s %12s %9s\n", "net", "boxed", "slot",
                "ratio");
    for (NetLevel level :
         {NetLevel::FL, NetLevel::CLSpec, NetLevel::RTL}) {
        SimConfig boxed{ExecMode::Interp, SpecMode::None,
                        SchedMode::Static, "", true};
        SimConfig slot{ExecMode::OptInterp, SpecMode::None,
                       SchedMode::Static, "", true};
        double r_b = rate(level, boxed);
        double r_s = rate(level, slot);
        std::printf("%-8s %12.0f %12.0f %8.2fx\n", netLevelName(level),
                    r_b, r_s, r_s / r_b);
    }

    rule('=');
    std::printf("3. specialization engine (slot storage, RTL mesh)\n");
    rule('=');
    std::printf("%-12s %12s\n", "engine", "cycles/s");
    {
        SimConfig none{ExecMode::OptInterp, SpecMode::None,
                       SchedMode::Auto, "", true};
        SimConfig bc{ExecMode::OptInterp, SpecMode::Bytecode,
                     SchedMode::Auto, "", true};
        std::printf("%-12s %12.0f\n", "tree-walk",
                    rate(NetLevel::RTL, none));
        std::printf("%-12s %12.0f\n", "bytecode",
                    rate(NetLevel::RTL, bc));
        if (CppJit::compilerAvailable()) {
            SimConfig cpp{ExecMode::OptInterp, SpecMode::Cpp,
                          SchedMode::Auto, "", true};
            std::printf("%-12s %12.0f\n", "compiled C++",
                        rate(NetLevel::RTL, cpp));
        }
    }
    return 0;
}
