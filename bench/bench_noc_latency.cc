/**
 * @file
 * NoC latency vs. offered load across traffic patterns.
 *
 * Sweeps the mesh network (CL IR subset, so every backend can run it)
 * over offered loads for each spatial/temporal traffic pattern and
 * records average generation-to-ejection latency plus accepted
 * throughput. The classic NoC picture falls out: uniform and
 * bit-complement saturate late, tornado saturates early (half-mesh
 * hops fight dimension-ordered routing), hotspot collapses onto the
 * congested node, and bursty tracks uniform in volume while paying a
 * latency premium for its on/off clumping.
 *
 * Writes BENCH_noc_latency.json (schema-gated in CI).
 */

#include <algorithm>

#include "common.h"
#include "net/traffic.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::net;

struct Point
{
    double injection = 0.0;
    double avg_latency = 0.0;
    double max_latency = 0.0;
    double throughput = 0.0;  //!< received / terminal / cycle
    double accepted = 0.0;    //!< injected / generated (1.0 unsaturated)
};

Point
measurePoint(int nrouters, int nentries, double injection, uint64_t seed,
             TrafficPattern pattern, const SimConfig &cfg,
             uint64_t warmup, uint64_t measure)
{
    MeshTrafficTop top("top", NetLevel::CLSpec, nrouters, nentries,
                       injection, seed, pattern);
    auto elab = top.elaborate();
    SimulationTool sim(elab, cfg);
    sim.cycle(warmup);
    top.resetStats();
    sim.cycle(measure);

    const NetStats &st = top.stats();
    Point p;
    p.injection = injection;
    p.avg_latency = st.avgLatency();
    p.max_latency = static_cast<double>(st.latency_max);
    p.throughput = st.throughput(top.numTerminals());
    // Clamped: messages generated before resetStats() can be accepted
    // after it, nudging the windowed ratio a hair above 1 when the
    // network is keeping up.
    p.accepted = st.generated
                     ? std::min(1.0, static_cast<double>(st.injected) /
                                         static_cast<double>(st.generated))
                     : 1.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;

    int nrouters = full ? 64 : 16;
    int nentries = 4;
    uint64_t seed = opts.seed_set ? opts.seed : 7;
    uint64_t warmup = full ? 1000 : 500;
    uint64_t measure = full ? 8000 : 2000;

    std::vector<double> loads = {0.02, 0.10, 0.20, 0.30, 0.40};
    if (full)
        loads = {0.02, 0.05, 0.10, 0.15, 0.20, 0.25,
                 0.30, 0.35, 0.40, 0.45};

    std::vector<TrafficPattern> patterns = allTrafficPatterns();
    if (!opts.traffic.empty()) {
        TrafficPattern one;
        if (!trafficPatternFromName(opts.traffic, &one)) {
            std::fprintf(stderr, "unknown traffic pattern '%s'\n",
                         opts.traffic.c_str());
            return 2;
        }
        patterns = {one};
    }

    std::printf("NoC latency vs offered load, %d-node CL mesh "
                "(seed %llu)\n",
                nrouters, static_cast<unsigned long long>(seed));

    JsonWriter json("BENCH_noc_latency.json");
    json.beginObject();
    json.field("bench", "noc_latency");
    json.field("nrouters", nrouters);
    json.field("nentries", nentries);
    json.field("seed", seed);
    json.field("warmup_cycles", warmup);
    json.field("measure_cycles", measure);
    json.field("full", full);
    json.key("patterns").beginArray();

    for (TrafficPattern pattern : patterns) {
        rule('=');
        std::printf("%s\n", trafficPatternName(pattern));
        rule('=');
        std::printf("%10s %14s %14s %12s %10s\n", "offered", "avg lat",
                    "max lat", "throughput", "accepted");

        json.beginObject();
        json.field("pattern", trafficPatternName(pattern));
        json.key("points").beginArray();

        for (double load : loads) {
            Point p = measurePoint(nrouters, nentries, load, seed,
                                   pattern, opts.cfg, warmup, measure);
            std::printf("%9.0f%% %14.2f %14.0f %12.4f %9.0f%%\n",
                        p.injection * 100, p.avg_latency, p.max_latency,
                        p.throughput, p.accepted * 100);
            std::fflush(stdout);

            json.beginObject();
            json.field("injection", p.injection);
            json.field("avg_latency", p.avg_latency);
            json.field("max_latency", p.max_latency);
            json.field("throughput", p.throughput);
            json.field("accepted", p.accepted);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.endArray();
    json.endObject();
    std::printf("wrote BENCH_noc_latency.json\n");
    return 0;
}
