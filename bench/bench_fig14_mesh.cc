/**
 * @file
 * Figure 14: SimJIT mesh network performance.
 *
 * 64-node FL, CL and RTL mesh networks operating near saturation,
 * simulated under every framework configuration plus the hand-written
 * C++ baseline. For each target simulation length the table reports
 * the speedup over CPython-analog execution, both excluding one-time
 * specialization overheads (the paper's solid lines / warm-cache
 * behaviour) and including them (dotted lines).
 *
 * Paper reference points (64-node mesh, 10M cycles): PyPy 12x (CL) /
 * 6x (RTL); SimJIT 30x / 63x; SimJIT+PyPy 75x / 200x; hand-written
 * C++ 300x (CL) / 1200x (verilated Verilog, RTL); SimJIT+PyPy within
 * 4x / 6x of hand-written code. The FL network sees only the PyPy
 * axis (no FL specializer exists, Figure 14a).
 */

#include "common.h"
#include "net/traffic.h"
#include "refcpp/refnet.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::net;

constexpr int kNodes = 64;
constexpr int kEntries = 4;
constexpr double kInjection = 0.30; //!< near saturation (paper Fig 14)

RateResult
measureLevel(NetLevel level, const SimConfig &cfg)
{
    return measureRate([&] {
        static std::unique_ptr<MeshTrafficTop> top;
        top = std::make_unique<MeshTrafficTop>("top", level, kNodes,
                                               kEntries, kInjection, 1);
        auto elab = top->elaborate();
        return std::make_unique<SimulationTool>(elab, cfg);
    });
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;
    std::vector<uint64_t> targets = {1000, 10000, 100000, 1000000};
    if (full)
        targets.push_back(10000000);

    // The paper's four configurations plus the whole-design tiered
    // JIT (SimJIT v2); --backend=<b> restricts the sweep to the
    // CPython baseline and that one backend.
    std::vector<ModeSpec> modes = paperModes(opts);
    if (!opts.backend_set && CppJit::compilerAvailable())
        modes.push_back(
            {"SimJIT-design", SimConfig::fromString("cpp-design")});

    std::printf("Figure 14: 64-node mesh simulator performance "
                "(injection %.0f%%)\n",
                kInjection * 100);
    std::printf("speedups vs CPython-analog at the same target cycles; "
                "'total' includes\nmeasured specialization overheads "
                "(cold overheads appear in Figure 16)\n");

    // The hand-written C++ baseline (one implementation, serves as
    // the comparator for both CL and RTL, standing in for the paper's
    // hand C++ / verilated-Verilog baselines).
    refcpp::RefMeshCL ref(kNodes, kEntries, kInjection, 1);
    ref.cycle(256);
    Stopwatch ref_sw;
    uint64_t ref_cycles = 0;
    while (ref_sw.elapsed() < 2.0) {
        ref.cycle(4096);
        ref_cycles += 4096;
    }
    double ref_rate = static_cast<double>(ref_cycles) / ref_sw.elapsed();

    JsonWriter json("BENCH_fig14_mesh.json");
    json.beginObject();
    json.field("bench", "fig14_mesh");
    json.field("nodes", kNodes);
    json.field("injection_rate", kInjection);
    json.field("handcpp_cycles_per_second", ref_rate);
    json.key("levels").beginArray();

    for (NetLevel level :
         {NetLevel::FL, NetLevel::CLSpec, NetLevel::RTL}) {
        rule('=');
        std::printf("%s network (paper Fig 14%c)\n",
                    level == NetLevel::CLSpec ? "CL (IR subset)"
                                              : netLevelName(level),
                    level == NetLevel::FL    ? 'a'
                    : level == NetLevel::CLSpec ? 'b'
                                                : 'c');
        rule('=');

        std::vector<std::pair<ModeSpec, RateResult>> results;
        for (const ModeSpec &mode : modes) {
            if (level == NetLevel::FL &&
                mode.cfg.spec != SpecMode::None)
                continue; // no FL specializer exists (paper Sec IV)
            results.emplace_back(mode,
                                 measureLevel(level, mode.cfg));
        }

        json.beginObject();
        json.field("level", netLevelName(level));
        json.key("configs").beginArray();
        for (const auto &[mode, r] : results) {
            json.beginObject();
            json.field("config", mode.name);
            json.field("backend", mode.cfg.toString());
            json.field("cycles_per_second", r.cycles_per_second);
            json.field("setup_seconds", r.setup_seconds);
            json.field("codegen_seconds", r.spec.codegenSeconds);
            json.field("compile_seconds", r.spec.compileSeconds);
            json.field("compile_ms", r.spec.compileSeconds * 1e3);
            // -1 = no tier swap (not a tiered backend); 0 = the
            // native module was live before the first cycle.
            json.field("tier_swap_cycle",
                       static_cast<int>(r.spec.tierSwapCycle));
            json.field("cache_hit", r.spec.cacheHit);
            json.endObject();
        }
        json.endArray();
        // One SimScope'd short run per level (interp config): phase
        // split, hot blocks and val/rdy channel stats for this design.
        json.key("metrics").rawValue(profileSnapshot(
            [&] {
                static std::unique_ptr<MeshTrafficTop> top;
                top = std::make_unique<MeshTrafficTop>(
                    "top", level, kNodes, kEntries, kInjection, 1);
                return std::unique_ptr<Simulator>(
                    std::make_unique<SimulationTool>(
                        top->elaborate(), modes.front().cfg));
            },
            96));
        json.endObject();

        const RateResult &interp = results.front().second;
        std::printf("%-14s %12s %8s", "config", "cycles/s",
                    "setup(s)");
        for (uint64_t n : targets)
            std::printf("  %8s@%-6s", "exec", std::to_string(n).c_str());
        std::printf("\n");
        for (const auto &[mode, r] : results) {
            std::printf("%-14s %12.0f %8.2f", mode.name.c_str(),
                        r.cycles_per_second, r.setup_seconds);
            for (uint64_t n : targets) {
                double solid = projectedTime(interp, n, false) /
                               projectedTime(r, n, false);
                double dotted = projectedTime(interp, n, false) /
                                projectedTime(r, n, true);
                std::printf("  %7.1fx/%-6.1f", solid, dotted);
            }
            std::printf("\n");
        }
        if (level != NetLevel::FL) {
            std::printf("%-14s %12.0f %8.2f", "hand C++", ref_rate,
                        0.0);
            for (uint64_t n : targets) {
                double solid = (static_cast<double>(n) /
                                interp.cycles_per_second) /
                               (static_cast<double>(n) / ref_rate);
                std::printf("  %7.1fx/%-6.1f", solid, solid);
            }
            std::printf("\n");
            const auto &[best_mode, best] = results.back();
            std::printf("--> %s within %.1fx of hand-written "
                        "C++ (paper: %s)\n",
                        best_mode.name.c_str(),
                        ref_rate / best.cycles_per_second,
                        level == NetLevel::RTL ? "6x" : "4x");
            // The tentpole gate: whole-design fusion vs per-block
            // compiled C++ (same specializer, one C-ABI crossing per
            // cycle instead of one per block per phase).
            const RateResult *block = nullptr, *design = nullptr;
            for (const auto &[mode, r] : results) {
                std::string b = mode.cfg.toString();
                if (b == "cpp-block")
                    block = &r;
                else if (b == "cpp-design")
                    design = &r;
            }
            if (block && design) {
                std::printf("--> cpp-design %.1fx over cpp-block "
                            "(tier swap at cycle %lld, compile "
                            "%.0f ms)\n",
                            design->cycles_per_second /
                                block->cycles_per_second,
                            static_cast<long long>(
                                design->spec.tierSwapCycle),
                            design->spec.compileSeconds * 1e3);
            }
        }
    }
    json.endArray();

    // Dead-logic elimination delta (DesignFlow): the RTL mesh with and
    // without SimConfig::dead_elim on a compiled backend — emitted TU
    // size, compile time and steady-state rate. The mesh is fully live
    // (every router feeds the observed traffic models), so the numbers
    // double as a no-regression gate: elimination must cost nothing
    // when there is nothing to eliminate.
    rule('=');
    std::printf("dead-logic elimination (RTL mesh)\n");
    rule('=');
    json.key("dead_elim").beginArray();
    {
        SimConfig base = CppJit::compilerAvailable()
                             ? SimConfig::fromString("cpp-block")
                             : SimConfig::fromString("bytecode");
        for (bool elim : {false, true}) {
            SimConfig cfg = base;
            cfg.dead_elim = elim;
            RateResult r = measureLevel(NetLevel::RTL, cfg);
            std::printf("%-14s %12.0f cycles/s  TU %8llu B  compile "
                        "%6.0f ms  elided %d block(s)\n",
                        elim ? "dead-elim" : "baseline",
                        r.cycles_per_second,
                        static_cast<unsigned long long>(
                            r.spec.emittedTuBytes),
                        r.spec.compileSeconds * 1e3,
                        r.spec.deadBlocksElided);
            json.beginObject();
            json.field("dead_elim", elim);
            json.field("backend", cfg.toString());
            json.field("cycles_per_second", r.cycles_per_second);
            json.field("emitted_tu_bytes",
                       static_cast<uint64_t>(r.spec.emittedTuBytes));
            json.field("compile_ms", r.spec.compileSeconds * 1e3);
            json.field("dead_blocks_elided", r.spec.deadBlocksElided);
            json.field("dead_nets_elided", r.spec.deadNetsElided);
            json.endObject();
        }
    }
    json.endArray();

    // Data layout policy (ArenaLayout): the RTL mesh on the compiled
    // whole-design backend under the elab-order layout vs the
    // profile-guided layout (island/producer grouping, narrow-net
    // bit-packing, coalesced flop memcpy ranges, and — on the tiered
    // backend — the mid-run heat-refined re-layout). State and VCD
    // streams are bit-identical across policies (test_layout), so
    // this table is pure throughput.
    rule('=');
    std::printf("data layout policy (RTL mesh)\n");
    rule('=');
    json.key("layout").beginArray();
    {
        SimConfig base = CppJit::compilerAvailable()
                             ? SimConfig::fromString("cpp-design")
                             : SimConfig::fromString("bytecode");
        double elab_rate = 0.0, profile_rate = 0.0;
        // Two alternating rounds per policy, best-of: a single 2 s
        // window is exposed to scheduler/turbo noise larger than the
        // layout delta under test.
        RateResult best[2];
        for (int round = 0; round < 2; ++round) {
            for (int p = 0; p < 2; ++p) {
                SimConfig cfg = base;
                cfg.layout = p == 0 ? LayoutPolicy::Elab
                                    : LayoutPolicy::Profile;
                RateResult r = measureLevel(NetLevel::RTL, cfg);
                if (r.cycles_per_second > best[p].cycles_per_second)
                    best[p] = r;
            }
        }
        for (LayoutPolicy policy :
             {LayoutPolicy::Elab, LayoutPolicy::Profile}) {
            const RateResult &r =
                best[policy == LayoutPolicy::Elab ? 0 : 1];
            (policy == LayoutPolicy::Elab ? elab_rate : profile_rate) =
                r.cycles_per_second;
            std::printf("%-14s %12.0f cycles/s  %5d words/phase  "
                        "%4d packed (%lld bits saved)  %d flop "
                        "range(s)%s\n",
                        layoutPolicyName(policy), r.cycles_per_second,
                        r.layout.words_per_phase, r.layout.packed_nets,
                        static_cast<long long>(
                            r.layout.packed_bits_saved),
                        r.layout.flop_memcpy_ranges,
                        r.layout.pgo ? "  [pgo]" : "");
            json.beginObject();
            json.field("policy", layoutPolicyName(policy));
            json.field("backend", base.toString());
            json.field("cycles_per_second", r.cycles_per_second);
            json.field("pgo", r.layout.pgo);
            json.field("packed_nets", r.layout.packed_nets);
            json.field("packed_bits_saved",
                       static_cast<uint64_t>(
                           r.layout.packed_bits_saved));
            json.field("words_per_phase", r.layout.words_per_phase);
            json.field("flop_memcpy_ranges",
                       r.layout.flop_memcpy_ranges);
            json.endObject();
        }
        if (elab_rate > 0.0) {
            std::printf("--> profile layout %.2fx over elab\n",
                        profile_rate / elab_rate);
        }
    }
    json.endArray();

    // Checkpoint cost and warm start (SimSnap): snapshot the RTL mesh
    // at a fixed cycle, restore into a fresh simulator and measure the
    // steady-state rate from there — the "resume a long run" point.
    rule('=');
    std::printf("checkpoint/warm start (RTL mesh, interp)\n");
    rule('=');
    WarmStartResult ws = measureWarmStart(
        [&] {
            static std::unique_ptr<MeshTrafficTop> top;
            top = std::make_unique<MeshTrafficTop>(
                "top", NetLevel::RTL, kNodes, kEntries, kInjection, 1);
            auto elab = top->elaborate();
            return std::unique_ptr<Simulator>(
                std::make_unique<SimulationTool>(elab,
                                                 modes.front().cfg));
        },
        full ? 5000 : 1000, full ? 2.0 : 1.0);
    std::printf("snapshot at cycle %llu: %llu bytes, %.2f ms capture, "
                "%.2f ms restore\nwarm-start rate %.0f cycles/s\n",
                static_cast<unsigned long long>(ws.snap_cycle),
                static_cast<unsigned long long>(ws.snapshot_bytes),
                ws.snapshot_ms, ws.restore_ms, ws.cycles_per_second);
    json.key("checkpoint").beginObject();
    json.field("level", "rtl");
    json.field("backend", modes.front().cfg.toString());
    json.field("snap_cycle", ws.snap_cycle);
    json.field("snapshot_bytes", ws.snapshot_bytes);
    json.field("snapshot_ms", ws.snapshot_ms);
    json.field("restore_ms", ws.restore_ms);
    json.key("warm_start").beginObject();
    json.field("cycles_per_second", ws.cycles_per_second);
    json.endObject();
    json.endObject();

    json.endObject();
    std::printf("wrote BENCH_fig14_mesh.json\n");
    return 0;
}
