/**
 * @file
 * SimServer sweep throughput: the simulation-as-a-service claim in
 * numbers.
 *
 * Drives the real daemon end-to-end — Unix socket, wire protocol,
 * scheduler, per-job elaboration — with batched sweeps of >= 100 grid
 * points and records jobs/min into BENCH_server_throughput.json for
 * 1, 2 and 4 concurrent jobs, cold vs warm SimJIT cache. The cold row
 * starts from an empty cache directory (the first jobs pay the
 * compile); the warm row reruns the identical sweep against the cache
 * the cold run left behind — the amortization a resident server
 * exists to provide. Every streamed digest is cross-checked against
 * an in-process one-shot baseline run on a different backend
 * (digest_mismatches must stay 0: the service returns exactly what a
 * CLI run would).
 *
 * Without a host compiler the sweep backend falls back to bytecode
 * (reported as jit_available=false) and cold/warm rows measure the
 * same thing; CI asserts warm > cold only when a compiler exists.
 */

#include <unistd.h>

#include <algorithm>
#include <thread>
#include <cstdlib>
#include <map>

#include "common.h"
#include "core/jit_cpp.h"
#include "server/server.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::server;

struct SweepOutcome
{
    double wall_s = 0.0;
    int points = 0;
    int errors = 0;
    int mismatches = 0;
    int preemptions = 0;
};

/** Run one wire-protocol sweep and check digests against @p golden. */
SweepOutcome
runSweep(const std::string &socket, const std::vector<double> &grid,
         const std::string &backend, uint64_t cycles,
         const std::map<int, uint64_t> &golden)
{
    SweepOutcome out;
    ProtoClient client;
    client.connect(socket);

    Json req = Json::object();
    req.set("verb", Json::string("sweep"));
    req.set("level", Json::string("cl"));
    req.set("cycles", Json::number(cycles));
    Json injections = Json::array();
    for (double inj : grid)
        injections.push(Json::number(inj));
    req.set("injections", std::move(injections));
    Json backends = Json::array();
    backends.push(Json::string(backend));
    req.set("backends", std::move(backends));

    Stopwatch timer;
    client.send(req);
    client.readReply(); // header frame
    for (;;) {
        Json frame = client.readReply();
        if (frame.find("sweep_done")) {
            const Json *p = frame.find("preemptions");
            out.preemptions = p ? p->asInt() : 0;
            break;
        }
        if (!frame.find("ok") || !frame.find("ok")->b) {
            ++out.errors;
            continue;
        }
        ++out.points;
        int index = frame.find("index") ? frame.find("index")->asInt()
                                        : -1;
        auto it = golden.find(index);
        const Json *digest = frame.find("digest");
        if (it == golden.end() || !digest ||
            digest->asStr() != hexU64(it->second))
            ++out.mismatches;
    }
    out.wall_s = timer.elapsed();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    const int sweep_points = opts.full ? 200 : 100;
    const uint64_t cycles = opts.cycles ? opts.cycles : 200;
    const bool jit = CppJit::compilerAvailable();
    const std::string backend = jit ? "cpp-block" : "bytecode";

    // Injection grid: sweep_points rates spread over (0, 0.5]. Every
    // point shares one elaboration *structure*, so one JIT compile
    // serves the whole grid — the amortization under test.
    std::vector<double> grid;
    for (int i = 1; i <= sweep_points; ++i)
        grid.push_back(0.5 * i / sweep_points);

    // One-shot baselines on a different backend (bit-identical by the
    // backend contract), keyed by grid index.
    std::printf("computing %d one-shot baseline digests...\n",
                sweep_points);
    std::map<int, uint64_t> golden;
    for (int i = 0; i < sweep_points; ++i) {
        JobSpec spec;
        spec.level = "cl";
        spec.cycles = cycles;
        spec.injection = grid[static_cast<size_t>(i)];
        golden[i] = runOneShot(spec, defaultCorpusFactory()).digest;
    }

    const std::string cache_dir =
        "/tmp/cmtl-bench-server-cache-" + std::to_string(::getpid());
    JsonWriter json("BENCH_server_throughput.json");
    json.beginObject()
        .field("bench", "server_throughput")
        .field("design", "mesh")
        .field("level", "cl")
        .field("nrouters", 16)
        .field("cycles_per_job", cycles)
        .field("sweep_points", sweep_points)
        .field("backend", backend)
        .field("jit_available", jit)
        .field("host_cpus",
               static_cast<int>(std::thread::hardware_concurrency()))
        .key("results")
        .beginArray();

    std::printf("%6s %6s %10s %12s %10s %12s\n", "jobs", "cache",
                "wall_s", "jobs_per_min", "errors", "mismatches");
    bool all_clean = true;
    for (int jobs : {1, 2, 4}) {
        // A fresh cache directory makes the first sweep cold; the
        // second sweep on the same server reuses the published .so.
        std::string rm = "rm -rf " + cache_dir;
        if (std::system(rm.c_str()) != 0)
            std::fprintf(stderr, "warning: could not clear %s\n",
                         cache_dir.c_str());
        ::setenv("CMTL_JIT_CACHE", cache_dir.c_str(), 1);

        ServerConfig cfg;
        cfg.socket_path = "/tmp/cmtl-bench-server-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(jobs) + ".sock";
        cfg.jobs = jobs;
        cfg.queue_cap = 64; // < sweep_points: waves exercised
        SimServer server(cfg);
        server.registerDefaultCorpus();
        std::string error;
        if (!server.start(&error)) {
            std::fprintf(stderr, "cannot start server: %s\n",
                         error.c_str());
            return 1;
        }

        for (const char *cache : {"cold", "warm"}) {
            SweepOutcome res = runSweep(cfg.socket_path, grid, backend,
                                        cycles, golden);
            double jobs_per_min =
                res.wall_s > 0 ? res.points * 60.0 / res.wall_s : 0;
            std::printf("%6d %6s %10.2f %12.1f %10d %12d\n", jobs,
                        cache, res.wall_s, jobs_per_min, res.errors,
                        res.mismatches);
            all_clean = all_clean && res.errors == 0 &&
                        res.mismatches == 0 &&
                        res.points == sweep_points;
            json.beginObject()
                .field("jobs", jobs)
                .field("cache", cache)
                .field("points_done", res.points)
                .field("errors", res.errors)
                .field("digest_mismatches", res.mismatches)
                .field("preemptions", res.preemptions)
                .field("wall_s", res.wall_s)
                .field("jobs_per_min", jobs_per_min)
                .endObject();
        }
        server.stop();
    }
    json.endArray().endObject();
    std::string rm = "rm -rf " + cache_dir;
    if (std::system(rm.c_str()) != 0)
        std::fprintf(stderr, "warning: could not clear %s\n",
                     cache_dir.c_str());
    std::printf("wrote BENCH_server_throughput.json\n");
    return all_clean ? 0 : 1;
}
