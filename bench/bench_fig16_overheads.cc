/**
 * @file
 * Figure 16: SimJIT specializer overheads.
 *
 * Breaks down the one-time cost of run-time specializer creation for
 * 16- and 64-node CL and RTL meshes: elaboration (elab), code
 * generation (cgen), Verilog translation (veri — the verilation-stage
 * analog, exercised for RTL only), external compilation (comp),
 * dlopen+symbol binding (wrap) and simulator datastructure creation
 * (simc), under both host-execution modes. A second table shows the
 * effect of the translation cache (paper Section IV-A): compile and
 * wrap costs become one-time.
 *
 * Paper reference: compile time dominates everywhere; RTL overheads
 * greatly exceed CL; 64-node RTL took 230s at -O1 in 2014.
 */

#include <unistd.h>

#include <cstdlib>

#include "common.h"
#include "core/translate.h"
#include "net/traffic.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::net;

struct Overheads
{
    double elab, cgen, veri, comp, wrap, simc;
    bool cache_hit;
};

Overheads
measure(NetLevel level, int nodes, ExecMode exec, bool use_cache,
        const std::string &cache_dir)
{
    Overheads out{};
    auto top = std::make_unique<MeshTrafficTop>("top", level, nodes, 4,
                                                0.3, 1);
    Stopwatch sw;
    auto elab = top->elaborate();
    out.elab = sw.elapsed();

    // The verilation-stage analog: translate the RTL network (the
    // translatable subtree, without the lambda-based test harness) to
    // Verilog — the paper's SimJIT-RTL pipeline step.
    if (level == NetLevel::RTL) {
        MeshNetworkRTL netm(nullptr, "net", nodes, 16, 16, 4);
        auto nelab = netm.elaborate();
        Stopwatch vs;
        TranslationTool().translate(*nelab);
        out.veri = vs.elapsed();
    }

    SimConfig cfg;
    cfg.exec = exec;
    cfg.spec = SpecMode::Cpp;
    cfg.jit_cache = use_cache;
    cfg.jit_cache_dir = cache_dir;
    SimulationTool sim(elab, cfg);
    const SpecStats &stats = sim.specStats();
    out.cgen = stats.codegenSeconds;
    out.comp = stats.compileSeconds;
    out.wrap = stats.wrapSeconds;
    out.simc = stats.simCreateSeconds;
    out.cache_hit = stats.cacheHit;
    return out;
}

void
printRow(const char *level, int nodes, const char *exec,
         const Overheads &o)
{
    std::printf("%-4s %4d  %-7s %7.2f %7.2f %7.2f %8.2f %7.3f %7.3f "
                "%8.2f%s\n",
                level, nodes, exec, o.elab, o.cgen, o.veri, o.comp,
                o.wrap, o.simc,
                o.elab + o.cgen + o.veri + o.comp + o.wrap + o.simc,
                o.cache_hit ? "  (cache hit)" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    if (!CppJit::compilerAvailable()) {
        std::printf("Figure 16: skipped — no host C++ compiler for the "
                    "SimJIT-C++ backend.\n");
        return 0;
    }
    (void)fullScale(argc, argv);

    // A private cache directory so 'cold' is genuinely cold.
    std::string cold_dir =
        "/tmp/cmtl-fig16-" + std::to_string(::getpid());

    std::printf("Figure 16: specializer creation overheads (seconds)\n");
    std::printf("%-4s %4s  %-7s %7s %7s %7s %8s %7s %7s %8s\n", "net",
                "size", "exec", "elab", "cgen", "veri", "comp", "wrap",
                "simc", "total");
    rule();

    for (NetLevel level : {NetLevel::CLSpec, NetLevel::RTL}) {
        for (int nodes : {16, 64}) {
            for (ExecMode exec :
                 {ExecMode::Interp, ExecMode::OptInterp}) {
                Overheads o = measure(level, nodes, exec,
                                      /*use_cache=*/false, cold_dir);
                printRow(level == NetLevel::CLSpec ? "CL" : "RTL",
                         nodes,
                         exec == ExecMode::Interp ? "CPython" : "PyPy",
                         o);
            }
        }
    }

    rule();
    std::printf("with the translation cache warm (second run of the "
                "same design):\n");
    Overheads warm = measure(NetLevel::RTL, 64, ExecMode::OptInterp,
                             true, cold_dir);
    printRow("RTL", 64, "PyPy", warm);

    std::system(("rm -rf " + cold_dir).c_str());
    return 0;
}
