/**
 * @file
 * Microbenchmarks of the framework primitives (google-benchmark).
 *
 * Covers the Bits value type (narrow and wide paths), the three IR
 * execution engines on an operator-torture block, and the two signal
 * storage backends — the primitives whose relative costs produce the
 * macro-level results in Figures 13-15.
 */

#include <benchmark/benchmark.h>

#include "core/ir_bytecode.h"
#include "core/ir_eval.h"
#include "core/jit_cpp.h"
#include "core/ir_cpp.h"
#include "core/model.h"
#include "core/store.h"

namespace {

using namespace cmtl;

// ------------------------------------------------------------- Bits

void
BM_BitsAddNarrow(benchmark::State &state)
{
    Bits a(32, 123456), b(32, 654321);
    for (auto _ : state)
        benchmark::DoNotOptimize(a + b);
}
BENCHMARK(BM_BitsAddNarrow);

void
BM_BitsAddWide(benchmark::State &state)
{
    Bits a = Bits::fromWords(128, {~uint64_t(0), 1});
    Bits b = Bits::fromWords(128, {5, 6});
    for (auto _ : state)
        benchmark::DoNotOptimize(a + b);
}
BENCHMARK(BM_BitsAddWide);

void
BM_BitsMulWide(benchmark::State &state)
{
    Bits a = Bits::fromWords(128, {0x123456789abcdefull, 77});
    Bits b = Bits::fromWords(128, {0xfedcba987654321ull, 88});
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_BitsMulWide);

void
BM_BitsSlice(benchmark::State &state)
{
    Bits a = Bits::fromWords(128, {0x123456789abcdefull, 77});
    for (auto _ : state)
        benchmark::DoNotOptimize(a.slice(37, 48));
}
BENCHMARK(BM_BitsSlice);

// ------------------------------------------------- execution engines

/** The operator-torture ALU from the IR test suite. */
class TortureAlu : public Model
{
  public:
    InPort a, b;
    OutPort res;
    TortureAlu()
        : Model(nullptr, "alu"), a(this, "a", 32), b(this, "b", 32),
          res(this, "res", 32)
    {
        auto &c = combinational("comb");
        IrExpr ea = rd(a), eb = rd(b);
        IrExpr t = c.let("t", (ea * eb) ^ (ea - eb));
        IrExpr shifted = (t << eb.slice(0, 3)) | (t >> ea.slice(0, 3));
        IrExpr cmp = mux(ea < eb, ea + eb, shifted);
        c.if_(ea == eb, [&] { c.assign(res, cmp + 1); },
              [&] { c.assign(res, cmp ^ t); });
    }
};

struct EngineFixture
{
    TortureAlu alu;
    std::shared_ptr<Elaboration> elab = alu.elaborate();
    ArenaStore arena{*elab};
    BoxedStore boxed{*elab};
};

void
BM_EngineBoxedTreeWalk(benchmark::State &state)
{
    EngineFixture f;
    BoxedEvaluator eval(f.boxed);
    uint64_t i = 0;
    for (auto _ : state) {
        f.boxed.write(f.alu.a.netId(), Bits(32, ++i));
        f.boxed.write(f.alu.b.netId(), Bits(32, i * 7));
        eval.run(f.elab->blocks[0]);
    }
}
BENCHMARK(BM_EngineBoxedTreeWalk);

void
BM_EngineSlotTreeWalk(benchmark::State &state)
{
    EngineFixture f;
    SlotEvaluator eval(f.arena);
    // The elab layout never packs, so raw word stores at the slot
    // offset are exact — the same fast path the kernels use.
    uint64_t *w = f.arena.data();
    const int a = f.arena.offset(f.alu.a.netId());
    const int b = f.arena.offset(f.alu.b.netId());
    const uint64_t am = f.arena.mask(f.alu.a.netId());
    const uint64_t bm = f.arena.mask(f.alu.b.netId());
    uint64_t i = 0;
    for (auto _ : state) {
        w[a] = ++i & am;
        w[b] = (i * 7) & bm;
        eval.run(f.elab->blocks[0]);
    }
}
BENCHMARK(BM_EngineSlotTreeWalk);

void
BM_EngineBytecode(benchmark::State &state)
{
    EngineFixture f;
    BcProgram prog = bcCompile(f.elab->blocks[0], f.arena);
    std::vector<uint64_t> scratch(prog.nscratch + 1);
    uint64_t *w = f.arena.data();
    const int a = f.arena.offset(f.alu.a.netId());
    const int b = f.arena.offset(f.alu.b.netId());
    const uint64_t am = f.arena.mask(f.alu.a.netId());
    const uint64_t bm = f.arena.mask(f.alu.b.netId());
    uint64_t i = 0;
    for (auto _ : state) {
        w[a] = ++i & am;
        w[b] = (i * 7) & bm;
        bcRun(prog, f.arena.data(), scratch.data());
    }
}
BENCHMARK(BM_EngineBytecode);

void
BM_EngineCompiledCpp(benchmark::State &state)
{
    if (!CppJit::compilerAvailable()) {
        state.SkipWithError("no host compiler");
        return;
    }
    EngineFixture f;
    std::string source = cppEmitProgram(
        *f.elab, f.arena, std::vector<std::vector<int>>{{0}});
    CppJit jit;
    CppJitLibrary lib = jit.compile(source, 1);
    uint64_t *w = f.arena.data();
    const int a = f.arena.offset(f.alu.a.netId());
    const int b = f.arena.offset(f.alu.b.netId());
    const uint64_t am = f.arena.mask(f.alu.a.netId());
    const uint64_t bm = f.arena.mask(f.alu.b.netId());
    uint64_t i = 0;
    for (auto _ : state) {
        w[a] = ++i & am;
        w[b] = (i * 7) & bm;
        lib.group(0)(f.arena.data());
    }
}
BENCHMARK(BM_EngineCompiledCpp);

// ------------------------------------------------- storage backends

void
BM_StoreBoxedReadWrite(benchmark::State &state)
{
    EngineFixture f;
    int net = f.alu.a.netId();
    uint64_t i = 0;
    for (auto _ : state) {
        f.boxed.write(net, Bits(32, ++i));
        benchmark::DoNotOptimize(f.boxed.read(net));
    }
}
BENCHMARK(BM_StoreBoxedReadWrite);

void
BM_StoreArenaReadWrite(benchmark::State &state)
{
    EngineFixture f;
    int net = f.alu.a.netId();
    uint64_t *w = f.arena.data();
    const int off = f.arena.offset(net);
    const uint64_t m = f.arena.mask(net);
    uint64_t i = 0;
    for (auto _ : state) {
        w[off] = ++i & m;
        benchmark::DoNotOptimize(w[off]);
    }
}
BENCHMARK(BM_StoreArenaReadWrite);

} // namespace

BENCHMARK_MAIN();
