/**
 * @file
 * Figure 13: simulator performance vs. level of detail.
 *
 * All 27 ⟨Processor, Cache, Accelerator⟩ compositions of the compute
 * tile execute the matrix-vector-multiplication kernel under the
 * CPython analog and under SimJIT+PyPy. Performance is wall-clock to
 * complete the workload, normalized against a pure instruction-set
 * simulator (the paper's LOD=1 baseline; here the host-native
 * GoldenIss standing in for the PyPy ISS). LOD = p + c + a with
 * FL=1, CL=2, RTL=3.
 *
 * Expected shape (paper): normalized performance trends downward as
 * LOD grows; a large drop between the ISS and ⟨FL,FL,FL⟩ (the cost of
 * modular port-based modeling); SimJIT+PyPy shifts every point up,
 * with ⟨RTL,RTL,RTL⟩ recovering strongly because the whole design
 * specializes as one unit. Note: our CL components are host lambdas
 * (arbitrary-Python analogs), so unlike the paper's run SimJIT-CL has
 * no CL cache to specialize; CL components benefit from the PyPy axis
 * only.
 */

#include "common.h"
#include "tile/programs.h"
#include "tile/tile.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::tile;

double
runTile(Level p, Level c, Level a, const SimConfig &cfg,
        const Workload &w)
{
    // Repeat whole workload executions until the measurement is
    // stable; simulator construction and specialization overheads are
    // excluded (Figure 13 studies steady-state simulation rate).
    double total = 0.0;
    int reps = 0;
    while (total < 0.25 && reps < 200) {
        auto t = std::make_unique<Tile>("tile", p, c, a);
        t->loadProgram(w.image);
        loadMvmultData(t->mem(), w);
        auto elab = t->elaborate();
        SimulationTool sim(elab, cfg);
        sim.reset();
        Stopwatch sw;
        uint64_t guard = 0;
        while (!t->halted() && ++guard < 100000)
            sim.cycle(64);
        total += sw.elapsed();
        ++reps;
    }
    return total / reps;
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;
    const int n = full ? 64 : 16;
    Workload w = makeMvmultAccel(n);

    // LOD-1 baseline: the instruction-set simulator. Repeat until
    // measurable.
    double iss_time;
    {
        Stopwatch sw;
        int reps = 0;
        do {
            GoldenIss iss(w.image);
            for (uint32_t i = 0;
                 i < static_cast<uint32_t>(w.n) * w.n; ++i)
                iss.writeMem(w.matrix_addr + i * 4, mvmultElement(1, i));
            for (uint32_t i = 0; i < static_cast<uint32_t>(w.n); ++i)
                iss.writeMem(w.vector_addr + i * 4,
                             mvmultElement(2, i));
            iss.run(100000000);
            ++reps;
        } while (sw.elapsed() < 0.2);
        iss_time = sw.elapsed() / reps;
    }

    SimConfig cpython{ExecMode::Interp, SpecMode::None, SchedMode::Auto,
                      "", true};
    SimConfig simjit = simjitConfig(opts);

    std::printf("Figure 13: simulator performance vs level of detail\n");
    std::printf("workload: %dx%d mvmult on the accelerator tile; "
                "performance normalized\nagainst the ISS baseline "
                "(%.2f us per run)\n\n",
                n, n, iss_time * 1e6);
    std::printf("%-12s %3s  %14s %14s %10s\n", "<P,C,A>", "LOD",
                "CPython", "SimJIT+PyPy", "shift");
    rule();

    const Level levels[] = {Level::FL, Level::CL, Level::RTL};
    for (Level p : levels) {
        for (Level c : levels) {
            for (Level a : levels) {
                double t_interp = runTile(p, c, a, cpython, w);
                double t_spec = runTile(p, c, a, simjit, w);
                int lod = lodScore(p) + lodScore(c) + lodScore(a);
                std::printf("%-12s %3d  %14.6f %14.6f %9.1fx\n",
                            (std::string(levelName(p)) + "," +
                             levelName(c) + "," + levelName(a))
                                .c_str(),
                            lod, iss_time / t_interp,
                            iss_time / t_spec, t_interp / t_spec);
                std::fflush(stdout);
            }
        }
    }
    rule();
    std::printf("ISS baseline plots at LOD 1, normalized performance "
                "1.0\n");
    return 0;
}
