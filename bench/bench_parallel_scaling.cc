/**
 * @file
 * ParSim thread-scaling baseline.
 *
 * Sweeps the parallel kernel across thread counts {1,2,4,8,16} on the
 * parallelism-relevant workloads — mesh RTL networks near saturation
 * at 8x8, 32x32 and (with --full) 64x64 terminals, plus the multi-tile
 * system over the CL mesh — and records the machine-readable perf
 * baseline in BENCH_parallel_scaling.json. Speedups are self-relative
 * (ParSim at N threads vs the sequential SimulationTool on the same
 * design and SpecMode), the honest number for a bulk-synchronous
 * kernel: it includes every barrier and boundary-push cost.
 *
 * Points whose thread count exceeds the host's hardware threads are
 * marked "oversubscribed": true and carry NO speedup field — a number
 * measured with spin-barrier workers time-slicing against each other
 * is an overhead datapoint, not a scaling claim. Each parallel point
 * also records the partition quality both ways (refined cut_tokens vs
 * the chunked seed's cut_tokens_chunked), the barrier wait and the
 * supersteps skipped by activity gating, so scaling regressions can be
 * attributed to partitioning, synchronization or wasted compute.
 */

#include <thread>

#include "common.h"
#include "core/psim.h"
#include "core/stats.h"
#include "net/traffic.h"
#include "tile/multitile.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using net::MeshTrafficTop;
using net::NetLevel;

SimConfig
cfgFor(Backend backend, int threads)
{
    SimConfig cfg;
    cfg.backend = backend;
    cfg.threads = threads;
    return cfg;
}

std::unique_ptr<Simulator>
makeMesh(int nrouters, Backend backend, int threads)
{
    static std::unique_ptr<MeshTrafficTop> top;
    top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, nrouters,
                                           4, 0.30, 1);
    return makeSimulator(top->elaborate(), cfgFor(backend, threads));
}

std::unique_ptr<Simulator>
makeMultiTile(Backend backend, int threads)
{
    using namespace tile;
    static std::unique_ptr<MultiTileSystem> sys;
    static Workload w = makeMvmultMultiTile(8, false);
    sys = std::make_unique<MultiTileSystem>(
        "sys",
        std::vector<std::array<Level, 3>>(
            4, {Level::RTL, Level::RTL, Level::RTL}),
        /*cl_network=*/true);
    sys->loadProgram(w.image);
    loadMvmultData(sys->memNode(), w);
    return makeSimulator(sys->elaborate(), cfgFor(backend, threads));
}

struct Scenario
{
    std::string name;
    Backend backend;
    std::function<std::unique_ptr<Simulator>(Backend, int)> make;
    uint64_t probe_cycles; //!< SimScope'd fixed-length phase probe
};

std::string
backendName(Backend backend)
{
    SimConfig cfg;
    cfg.backend = backend;
    return cfg.toString();
}

std::function<std::unique_ptr<Simulator>(Backend, int)>
meshFactory(int nrouters)
{
    return [nrouters](Backend backend, int threads) {
        return makeMesh(nrouters, backend, threads);
    };
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;
    double budget = full ? 4.0 : 1.0;
    std::vector<int> thread_counts = {1, 2, 4, 8, 16};
    int host_cpus =
        static_cast<int>(std::thread::hardware_concurrency());

    std::vector<Scenario> scenarios = {
        {"mesh_rtl_8x8", Backend::OptInterp, meshFactory(64), 192},
        {"mesh_rtl_8x8_bytecode", Backend::Bytecode, meshFactory(64),
         192},
        {"mesh_rtl_32x32", Backend::Bytecode, meshFactory(1024), 96},
        {"multitile_4rtl_mesh", Backend::Bytecode, makeMultiTile, 192},
    };
    if (full) {
        scenarios.push_back(
            {"mesh_rtl_64x64", Backend::Bytecode, meshFactory(4096), 48});
    }
    if (opts.backend_set) {
        // --backend=<b>: sweep just that backend on the small mesh and
        // the multi-tile system.
        std::string b = backendName(opts.cfg.backend);
        scenarios = {
            {"mesh_rtl_8x8_" + b, opts.cfg.backend, meshFactory(64), 192},
            {"multitile_4rtl_mesh_" + b, opts.cfg.backend, makeMultiTile,
             192},
        };
    }

    std::printf("ParSim thread scaling (host cpus: %d)\n", host_cpus);
    if (host_cpus < thread_counts.back()) {
        std::printf("NOTE: thread counts above %d host cpus are marked "
                    "oversubscribed (no speedup claim)\n",
                    host_cpus);
    }

    JsonWriter json("BENCH_parallel_scaling.json");
    json.beginObject();
    json.field("bench", "parallel_scaling");
    json.field("host_cpus", host_cpus);
    json.field("full", full);
    json.key("scenarios").beginArray();

    for (const Scenario &sc : scenarios) {
        rule('=');
        std::printf("%s (backend %s)\n", sc.name.c_str(),
                    backendName(sc.backend).c_str());
        rule('=');
        std::printf("%8s %14s %10s %10s %10s %12s\n", "threads",
                    "cycles/s", "speedup", "islands", "cut", "gated");

        json.beginObject();
        json.field("name", sc.name);
        json.field("backend", backendName(sc.backend));
        json.key("points").beginArray();

        double base_rate = 0.0;
        for (int threads : thread_counts) {
            bool oversubscribed = host_cpus > 0 && threads > host_cpus;
            RateResult r = measureRate(
                [&] { return sc.make(sc.backend, threads); }, budget);
            if (threads == 1)
                base_rate = r.cycles_per_second;
            double speedup =
                base_rate > 0 ? r.cycles_per_second / base_rate : 0.0;

            // Partition shape and per-phase breakdown at this thread
            // count (threads=1 is the sequential kernel: one island,
            // no barriers). The probe run is short and SimScope'd:
            // island compute vs barrier-wait vs boundary traffic vs
            // gated (skipped) supersteps.
            int nislands = 1, nlevels = 1, cut = 0, cut_chunked = 0;
            int refine_passes = 0;
            double imbalance = 1.0;
            std::unique_ptr<Simulator> probe =
                sc.make(sc.backend, threads);
            if (auto *par =
                    dynamic_cast<ParSimulationTool *>(probe.get())) {
                nislands = par->plan().nislands;
                nlevels = par->plan().nlevels;
                cut = par->plan().cutTokens;
                cut_chunked = par->plan().seedCutTokens;
                refine_passes = par->plan().refinePasses;
                imbalance = par->plan().imbalance();
                if (threads == thread_counts[1])
                    std::printf("%s", simulatorReport(*par).c_str());
            }
            SimScope scope(*probe);
            probe->cycle(sc.probe_cycles);
            SimScope::PhaseBreakdown pb = scope.phaseBreakdown();
            std::string metrics = scope.jsonSnapshot();
            scope.detach();

            if (oversubscribed) {
                std::printf("%8d %14.0f %10s %10d %10d %12llu\n",
                            threads, r.cycles_per_second, "oversub",
                            nislands, cut,
                            static_cast<unsigned long long>(
                                pb.gated_supersteps));
            } else {
                std::printf("%8d %14.0f %9.2fx %10d %10d %12llu\n",
                            threads, r.cycles_per_second, speedup,
                            nislands, cut,
                            static_cast<unsigned long long>(
                                pb.gated_supersteps));
            }
            std::printf(
                "         phase: compute %.4fs  barrier %.4fs  "
                "boundary %llu B (%llu cycles)\n",
                pb.settle_seconds + pb.tick_seconds + pb.flop_seconds,
                pb.barrier_seconds,
                static_cast<unsigned long long>(pb.boundary_bytes),
                static_cast<unsigned long long>(sc.probe_cycles));

            json.beginObject();
            json.field("threads", threads);
            json.field("cycles_per_second", r.cycles_per_second);
            if (oversubscribed) {
                // No speedup claim for a point that time-sliced its
                // spin-barrier workers on too few cores.
                json.field("oversubscribed", true);
            } else {
                json.field("oversubscribed", false);
                json.field("speedup_vs_1thread", speedup);
            }
            json.field("setup_seconds", r.setup_seconds);
            json.field("measured_cycles", r.measured_cycles);
            json.field("islands", nislands);
            json.field("settle_supersteps", nlevels);
            json.field("cut_tokens", cut);
            json.field("cut_tokens_chunked", cut_chunked);
            json.field("refine_passes", refine_passes);
            json.field("imbalance", imbalance);
            json.field("probe_cycles", sc.probe_cycles);
            json.field("barrier_seconds", pb.barrier_seconds);
            json.field("gated_supersteps", pb.gated_supersteps);
            json.key("metrics").rawValue(metrics);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::printf("wrote BENCH_parallel_scaling.json\n");
    return 0;
}
