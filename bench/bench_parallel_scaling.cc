/**
 * @file
 * ParSim thread-scaling baseline.
 *
 * Sweeps the parallel kernel across thread counts on the two
 * parallelism-relevant workloads — the 8x8 mesh RTL network near
 * saturation and the multi-tile system over the CL mesh — and records
 * the first machine-readable perf baseline in
 * BENCH_parallel_scaling.json. Speedups are self-relative (ParSim at N
 * threads vs the sequential SimulationTool on the same design and
 * SpecMode), the honest number for a bulk-synchronous kernel: it
 * includes every barrier and boundary-push cost.
 *
 * The JSON records host_cpus alongside the rates; scaling measured on
 * a host with fewer cores than threads is oversubscribed and must be
 * read as a correctness/overhead datapoint, not a speedup claim.
 */

#include <thread>

#include "common.h"
#include "core/psim.h"
#include "core/stats.h"
#include "net/traffic.h"
#include "tile/multitile.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using net::MeshTrafficTop;
using net::NetLevel;

SimConfig
cfgFor(Backend backend, int threads)
{
    SimConfig cfg;
    cfg.backend = backend;
    cfg.threads = threads;
    return cfg;
}

std::unique_ptr<Simulator>
makeMesh(Backend backend, int threads)
{
    static std::unique_ptr<MeshTrafficTop> top;
    top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 64, 4,
                                           0.30, 1);
    return makeSimulator(top->elaborate(), cfgFor(backend, threads));
}

std::unique_ptr<Simulator>
makeMultiTile(Backend backend, int threads)
{
    using namespace tile;
    static std::unique_ptr<MultiTileSystem> sys;
    static Workload w = makeMvmultMultiTile(8, false);
    sys = std::make_unique<MultiTileSystem>(
        "sys",
        std::vector<std::array<Level, 3>>(
            4, {Level::RTL, Level::RTL, Level::RTL}),
        /*cl_network=*/true);
    sys->loadProgram(w.image);
    loadMvmultData(sys->memNode(), w);
    return makeSimulator(sys->elaborate(), cfgFor(backend, threads));
}

struct Scenario
{
    std::string name;
    Backend backend;
    std::unique_ptr<Simulator> (*make)(Backend, int);
};

std::string
backendName(Backend backend)
{
    SimConfig cfg;
    cfg.backend = backend;
    return cfg.toString();
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;
    double budget = full ? 4.0 : 1.5;
    std::vector<int> thread_counts = {1, 2, 4};
    if (full)
        thread_counts.push_back(8);
    int host_cpus =
        static_cast<int>(std::thread::hardware_concurrency());

    std::vector<Scenario> scenarios = {
        {"mesh_rtl_8x8", Backend::OptInterp, makeMesh},
        {"mesh_rtl_8x8_bytecode", Backend::Bytecode, makeMesh},
        {"multitile_4rtl_mesh", Backend::Bytecode, makeMultiTile},
    };
    if (opts.backend_set) {
        // --backend=<b>: sweep just that backend on both workloads.
        std::string b = backendName(opts.cfg.backend);
        scenarios = {
            {"mesh_rtl_8x8_" + b, opts.cfg.backend, makeMesh},
            {"multitile_4rtl_mesh_" + b, opts.cfg.backend,
             makeMultiTile},
        };
    }

    std::printf("ParSim thread scaling (host cpus: %d)\n", host_cpus);
    if (host_cpus < thread_counts.back()) {
        std::printf("NOTE: fewer host cpus than max threads; scaling "
                    "numbers are oversubscribed\n");
    }

    JsonWriter json("BENCH_parallel_scaling.json");
    json.beginObject();
    json.field("bench", "parallel_scaling");
    json.field("host_cpus", host_cpus);
    json.key("scenarios").beginArray();

    for (const Scenario &sc : scenarios) {
        rule('=');
        std::printf("%s (backend %s)\n", sc.name.c_str(),
                    backendName(sc.backend).c_str());
        rule('=');
        std::printf("%8s %14s %10s %10s\n", "threads", "cycles/s",
                    "speedup", "islands");

        json.beginObject();
        json.field("name", sc.name);
        json.field("backend", backendName(sc.backend));
        json.key("points").beginArray();

        double base_rate = 0.0;
        for (int threads : thread_counts) {
            RateResult r = measureRate(
                [&] { return sc.make(sc.backend, threads); }, budget);
            if (threads == 1)
                base_rate = r.cycles_per_second;
            double speedup =
                base_rate > 0 ? r.cycles_per_second / base_rate : 0.0;

            // Partition shape and per-phase breakdown at this thread
            // count (threads=1 is the sequential kernel: one island,
            // no barriers). The probe run is short and SimScope'd:
            // island compute vs barrier-wait vs boundary traffic.
            int nislands = 1, nlevels = 1, cut = 0;
            double imbalance = 1.0;
            std::unique_ptr<Simulator> probe =
                sc.make(sc.backend, threads);
            if (auto *par =
                    dynamic_cast<ParSimulationTool *>(probe.get())) {
                nislands = par->plan().nislands;
                nlevels = par->plan().nlevels;
                cut = par->plan().cutTokens;
                imbalance = par->plan().imbalance();
                if (threads == thread_counts[1])
                    std::printf("%s", simulatorReport(*par).c_str());
            }
            SimScope scope(*probe);
            probe->cycle(192);
            SimScope::PhaseBreakdown pb = scope.phaseBreakdown();
            std::string metrics = scope.jsonSnapshot();
            scope.detach();

            std::printf("%8d %14.0f %9.2fx %10d\n", threads,
                        r.cycles_per_second, speedup, nislands);
            std::printf(
                "         phase: compute %.4fs  barrier %.4fs  "
                "boundary %llu B (192 cycles)\n",
                pb.settle_seconds + pb.tick_seconds + pb.flop_seconds,
                pb.barrier_seconds,
                static_cast<unsigned long long>(pb.boundary_bytes));

            json.beginObject();
            json.field("threads", threads);
            json.field("cycles_per_second", r.cycles_per_second);
            json.field("speedup_vs_1thread", speedup);
            json.field("setup_seconds", r.setup_seconds);
            json.field("measured_cycles", r.measured_cycles);
            json.field("islands", nislands);
            json.field("settle_supersteps", nlevels);
            json.field("cut_tokens", cut);
            json.field("imbalance", imbalance);
            json.key("metrics").rawValue(metrics);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::printf("wrote BENCH_parallel_scaling.json\n");
    return 0;
}
