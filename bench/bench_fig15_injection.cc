/**
 * @file
 * Figure 15: SimJIT performance vs. load.
 *
 * Impact of injection rate on 64-node CL and RTL mesh simulations.
 * The paper observes: PyPy speedups are roughly flat across loads;
 * SimJIT speedups grow with load (more time in optimized code per
 * simulated cycle) and flatten past the saturation point near 30%
 * injection; SimJIT-CL+PyPy spans 23-49x and SimJIT-RTL+PyPy
 * 77-192x.
 */

#include "common.h"
#include "net/traffic.h"

namespace {

using namespace cmtl;
using namespace cmtl::bench;
using namespace cmtl::net;

constexpr int kNodes = 64;
constexpr int kEntries = 4;

RateResult
measurePoint(NetLevel level, const SimConfig &cfg, double injection)
{
    return measureRate(
        [&] {
            static std::unique_ptr<MeshTrafficTop> top;
            top = std::make_unique<MeshTrafficTop>(
                "top", level, kNodes, kEntries, injection, 1);
            auto elab = top->elaborate();
            return std::make_unique<SimulationTool>(elab, cfg);
        },
        1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    bool full = opts.full;
    std::vector<double> rates = {0.02, 0.10, 0.20, 0.30, 0.40};
    if (full)
        rates = {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40};

    std::printf("Figure 15: speedup vs injection rate, 64-node mesh\n");
    std::printf("(speedups over the CPython analog at the same load)\n");

    for (NetLevel level : {NetLevel::CLSpec, NetLevel::RTL}) {
        rule('=');
        std::printf("%s network\n", level == NetLevel::CLSpec
                                        ? "CL (IR subset)"
                                        : netLevelName(level));
        rule('=');
        std::printf("%-14s", "config");
        for (double r : rates)
            std::printf(" %7.0f%%", r * 100);
        std::printf("\n");

        std::vector<double> interp_rate;
        for (const ModeSpec &mode : paperModes(opts)) {
            std::printf("%-14s", mode.name.c_str());
            std::fflush(stdout);
            int i = 0;
            for (double inj : rates) {
                RateResult r = measurePoint(level, mode.cfg, inj);
                if (mode.cfg.exec == ExecMode::Interp &&
                    mode.cfg.spec == SpecMode::None) {
                    interp_rate.push_back(r.cycles_per_second);
                    std::printf(" %7.0f/s", r.cycles_per_second);
                } else {
                    std::printf(" %7.1fx",
                                r.cycles_per_second / interp_rate[i]);
                }
                std::fflush(stdout);
                ++i;
            }
            std::printf("\n");
        }
    }
    return 0;
}
